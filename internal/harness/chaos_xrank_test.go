package harness

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/telemetry/xrank"
)

// TestChaosResetProducesFlightRecording is the fault-path acceptance check:
// a chaos run with an injected connection reset must (a) freeze a
// flight-recorder dump and (b) leave a merged event stream whose Chrome
// trace shows the faulting op on the faulting rank.
func TestChaosResetProducesFlightRecording(t *testing.T) {
	dir := t.TempDir()
	rec := xrank.Default
	rec.Reset()
	rec.SetEnabled(true)
	rec.ConfigureFlight(dir, 30*time.Second, 8)
	defer func() {
		rec.ConfigureFlight("", 0, 0)
		rec.SetEnabled(false)
	}()

	const faultRank = 2
	cfg := ChaosConfig{
		Workers: 4, Tensors: 5, Steps: 20, Method: "none",
		Scenarios: []ChaosScenario{{
			Name:        "reset",
			ExpectError: true,
			Plan: comm.Plan{Seed: 9, Faults: []comm.Fault{
				{Kind: comm.FaultReset, Rank: faultRank, Op: comm.OpAllreduce, FromStep: 30},
			}},
		}},
	}
	results := RunChaos(cfg)
	if len(results) != 1 || !results[0].Pass {
		t.Fatalf("reset scenario did not pass: %+v", results)
	}

	// (a) The comm layer's fault choke point must have frozen a dump whose
	// events include the injected fault.
	dumps, err := filepath.Glob(filepath.Join(dir, "FLIGHT_*.json"))
	if err != nil || len(dumps) == 0 {
		t.Fatalf("no flight dump written (err=%v)", err)
	}
	raw, err := os.ReadFile(dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	var d xrank.FlightDump
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatalf("dump does not parse: %v", err)
	}
	if !strings.HasPrefix(d.Reason, "comm_") {
		t.Fatalf("dump reason %q, want a comm_<op> fault", d.Reason)
	}
	anyFault := false
	for _, ev := range d.Events {
		if ev.Kind == xrank.KindFault {
			anyFault = true
		}
	}
	if !anyFault {
		t.Fatalf("dump carries no fault events (%d events)", len(d.Events))
	}

	// (b) The merged stream (in-process, the recorder IS the merge) must
	// pin the allreduce fault on the injected rank, and the rendered Chrome
	// trace must carry that instant on the faulting rank's pid.
	evs, _ := rec.Events(0)
	found := false
	for _, ev := range evs {
		if ev.Kind == xrank.KindFault && ev.Rank == faultRank && ev.Op == xrank.OpAllreduce {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("merged events missing the rank-%d allreduce fault (%d events)", faultRank, len(evs))
	}
	tracePath := filepath.Join(dir, "trace.json")
	if err := xrank.WriteTrace(tracePath, evs); err != nil {
		t.Fatal(err)
	}
	traw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var trace []struct {
		Name string `json:"name"`
		Ph   string `json:"ph"`
		Pid  int    `json:"pid"`
	}
	if err := json.Unmarshal(traw, &trace); err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	for _, ev := range trace {
		if ev.Ph == "i" && ev.Pid == faultRank && strings.Contains(ev.Name, "allreduce") && strings.HasPrefix(ev.Name, "fault:") {
			return
		}
	}
	t.Fatalf("rendered trace lacks the fault instant on rank %d", faultRank)
}
