package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/grace"
	"repro/internal/telemetry"
)

// RunSummary is the machine-readable record of one harness invocation —
// a training run, a chaos sweep, or a recovery battery. Drivers write one
// per run (results/<run>.json) so sweeps can be diffed and plotted without
// scraping stdout. The Telemetry field reuses the live registry's snapshot
// type, so a summary carries exactly what /metrics would have served at
// process exit.
type RunSummary struct {
	// Kind tags what produced the summary: "train", "chaos", or "recovery".
	Kind    string `json:"kind"`
	Workers int    `json:"workers,omitempty"`
	Seed    uint64 `json:"seed,omitempty"`
	// Pass is the run-level verdict: every scenario (or the training run
	// itself) succeeded.
	Pass bool `json:"pass"`

	Train     []TrainResultJSON     `json:"train,omitempty"`
	Chaos     []ChaosResultJSON     `json:"chaos,omitempty"`
	Recovery  []RecoveryResultJSON  `json:"recovery,omitempty"`
	Rejoin    []RejoinResultJSON    `json:"rejoin,omitempty"`
	Elastic   []ElasticResultJSON   `json:"elastic,omitempty"`
	Straggler []StragglerResultJSON `json:"straggler,omitempty"`
	// Quality is the last training run's per-tensor compression-quality
	// table (achieved bits/param, EF residual L2, fault history); gracestat
	// renders it alongside the skew artifacts.
	Quality []grace.TensorQuality `json:"quality,omitempty"`

	// Telemetry is the process-wide counter/histogram snapshot at the time
	// the summary was written (nil when telemetry was not snapshotted).
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
}

// TrainResultJSON is one training configuration's headline numbers.
type TrainResultJSON struct {
	Bench        string  `json:"bench"`
	Method       string  `json:"method"`
	BestQuality  float64 `json:"best_quality"`
	FinalQuality float64 `json:"final_quality"`
	Throughput   float64 `json:"throughput_samples_per_s"`
	BytesPerIter float64 `json:"bytes_per_iter"`
	RecvPerIter  float64 `json:"recv_per_iter"`
	Iters        int     `json:"iters"`
	VirtualMs    float64 `json:"virtual_ms"`
}

// TrainJSON flattens a trainer report into its JSON row.
func TrainJSON(bench, method string, rep *grace.Report) TrainResultJSON {
	return TrainResultJSON{
		Bench:        bench,
		Method:       method,
		BestQuality:  rep.BestQuality,
		FinalQuality: rep.FinalQuality,
		Throughput:   rep.Throughput,
		BytesPerIter: rep.BytesPerIter,
		RecvPerIter:  rep.RecvPerIter,
		Iters:        rep.Iters,
		VirtualMs:    float64(rep.TotalVirtualTime) / float64(time.Millisecond),
	}
}

// ChaosResultJSON mirrors ChaosResult with errors rendered as strings so the
// record survives serialization.
type ChaosResultJSON struct {
	Scenario  string   `json:"scenario"`
	Pass      bool     `json:"pass"`
	Hung      bool     `json:"hung,omitempty"`
	ElapsedMs float64  `json:"elapsed_ms"`
	Injected  int64    `json:"faults_injected"`
	Retries   int64    `json:"retries_absorbed,omitempty"`
	Faults    int      `json:"decode_faults"`
	Fallbacks int      `json:"decode_fallbacks"`
	Errs      []string `json:"errors,omitempty"`
	Detail    string   `json:"detail,omitempty"`
}

// ChaosJSON converts a scenario verdict to its JSON form. Ranks that
// finished cleanly are omitted from Errs-by-index by rendering them as ""
// so rank alignment is preserved; a run with no errors at all serializes
// with the field absent.
func ChaosJSON(r ChaosResult) ChaosResultJSON {
	out := ChaosResultJSON{
		Scenario:  r.Scenario,
		Pass:      r.Pass,
		Hung:      r.Hung,
		ElapsedMs: float64(r.Elapsed) / float64(time.Millisecond),
		Injected:  r.Injected,
		Retries:   r.Retries,
		Faults:    r.Faults,
		Fallbacks: r.Fallbacks,
		Detail:    r.Detail,
	}
	any := false
	errs := make([]string, len(r.Errs))
	for i, err := range r.Errs {
		if err != nil {
			errs[i] = err.Error()
			any = true
		}
	}
	if any {
		out.Errs = errs
	}
	return out
}

// RecoveryResultJSON records one kill/restart scenario: the rollback step
// every rank resumed from and the bitwise-verify verdict against the
// uninterrupted reference run.
type RecoveryResultJSON struct {
	Scenario   string   `json:"scenario"`
	Pass       bool     `json:"pass"`
	ResumeStep int64    `json:"resume_step"`
	Match      bool     `json:"bitwise_match"`
	ElapsedMs  float64  `json:"elapsed_ms"`
	KillErrs   []string `json:"kill_errors,omitempty"`
	Detail     string   `json:"detail,omitempty"`
	// Err reports an infrastructure failure that prevented a verdict.
	Err string `json:"error,omitempty"`
}

// RecoveryJSON converts a recovery outcome to its JSON form. res may be nil
// when err is non-nil.
func RecoveryJSON(scenario string, res *RecoveryResult, elapsed time.Duration, err error) RecoveryResultJSON {
	out := RecoveryResultJSON{
		Scenario:  scenario,
		ElapsedMs: float64(elapsed) / float64(time.Millisecond),
	}
	if err != nil {
		out.Err = err.Error()
		return out
	}
	out.ResumeStep = res.ResumeStep
	out.Match = res.Match
	out.Detail = res.Detail
	out.Pass = res.Match
	for _, kerr := range res.KillErrs {
		if kerr != nil {
			out.KillErrs = append(out.KillErrs, kerr.Error())
		} else {
			out.KillErrs = append(out.KillErrs, "")
		}
	}
	return out
}

// RejoinResultJSON records one live-rejoin scenario: the heal's rollback
// step and generation, the per-rank launch counts (healthy ranks must stay
// at 1), downtime, and the bitwise verdict — alongside the restart path's
// downtime for the same scenario when the caller measured it.
type RejoinResultJSON struct {
	Scenario      string  `json:"scenario"`
	Pass          bool    `json:"pass"`
	ResumeStep    int64   `json:"resume_step"`
	Generation    uint64  `json:"generation"`
	Launches      []int   `json:"launches"`
	Heals         int     `json:"heals"`
	Reforms       int64   `json:"reforms"`
	TransferBytes int64   `json:"transfer_bytes,omitempty"`
	Match         bool    `json:"bitwise_match"`
	DowntimeMs    float64 `json:"downtime_ms"`
	// RestartDowntimeMs is the supervised full-restart path's downtime on the
	// same scenario, for the restart-vs-rejoin comparison (0 when not run).
	RestartDowntimeMs float64 `json:"restart_downtime_ms,omitempty"`
	Detail            string  `json:"detail,omitempty"`
	// Err reports an infrastructure failure that prevented a verdict.
	Err string `json:"error,omitempty"`
}

// RejoinJSON converts a rejoin outcome to its JSON form. res may be nil when
// err is non-nil. restartDowntime 0 means the comparison run was not made.
func RejoinJSON(scenario string, res *RejoinResult, restartDowntime time.Duration, err error) RejoinResultJSON {
	out := RejoinResultJSON{Scenario: scenario}
	if err != nil {
		out.Err = err.Error()
		return out
	}
	out.ResumeStep = res.ResumeStep
	out.Generation = res.Generation
	out.Launches = res.Launches
	out.Heals = res.Heals
	out.Reforms = res.Reforms
	out.TransferBytes = res.TransferBytes
	out.Match = res.Match
	out.Detail = res.Detail
	out.DowntimeMs = float64(res.Downtime) / float64(time.Millisecond)
	out.RestartDowntimeMs = float64(restartDowntime) / float64(time.Millisecond)
	out.Pass = res.Match
	return out
}

// ElasticResultJSON records one elastic-membership scenario. Shrink rows
// carry the degraded group's commit (size, evicted ranks, EF-residual drops)
// and the bitwise verdict against an N−1 reference started from the
// post-reform state; grow rows carry the absorption step and size instead.
// The restart path's downtime on the same kill gives the comparison column.
type ElasticResultJSON struct {
	Scenario   string `json:"scenario"`
	Pass       bool   `json:"pass"`
	ShrinkStep int64  `json:"shrink_step"`
	ShrinkSize int    `json:"shrink_size,omitempty"`
	Lost       []int  `json:"lost,omitempty"`
	EFDrops    int64  `json:"ef_drops,omitempty"`
	Match      bool   `json:"bitwise_match,omitempty"`
	DowntimeMs float64 `json:"downtime_ms,omitempty"`
	// RestartDowntimeMs is the supervised full-restart path's downtime on the
	// same scenario, for the degrade-vs-restart comparison (0 when not run).
	RestartDowntimeMs float64 `json:"restart_downtime_ms,omitempty"`
	GrowStep          int64   `json:"grow_step,omitempty"`
	GrowSize          int     `json:"grow_size,omitempty"`
	GrowDowntimeMs    float64 `json:"grow_downtime_ms,omitempty"`
	Detail            string  `json:"detail,omitempty"`
	// Err reports an infrastructure failure that prevented a verdict.
	Err string `json:"error,omitempty"`
}

// ElasticJSON converts a shrink outcome to its JSON form. res may be nil when
// err is non-nil. restartDowntime 0 means the comparison run was not made.
func ElasticJSON(scenario string, res *ElasticResult, restartDowntime time.Duration, err error) ElasticResultJSON {
	out := ElasticResultJSON{Scenario: scenario}
	if err != nil {
		out.Err = err.Error()
		return out
	}
	out.ShrinkStep = res.ShrinkStep
	out.ShrinkSize = res.ShrinkSize
	out.Lost = res.Lost
	out.EFDrops = res.EFDrops
	out.Match = res.Match
	out.Detail = res.Detail
	out.DowntimeMs = float64(res.Downtime) / float64(time.Millisecond)
	out.RestartDowntimeMs = float64(restartDowntime) / float64(time.Millisecond)
	out.Pass = res.Match
	return out
}

// ElasticGrowJSON converts a grow outcome to its JSON form; workers is the
// full world size the group must reach again. res may be nil when err is
// non-nil.
func ElasticGrowJSON(scenario string, res *ElasticGrowResult, workers int, err error) ElasticResultJSON {
	out := ElasticResultJSON{Scenario: scenario}
	if err != nil {
		out.Err = err.Error()
		return out
	}
	out.ShrinkStep = res.ShrinkStep
	out.GrowStep = res.GrowStep
	out.GrowSize = res.GrowSize
	out.GrowDowntimeMs = float64(res.GrowDowntime) / float64(time.Millisecond)
	out.Pass = res.GrowSize == workers && res.GrowStep > res.ShrinkStep
	return out
}

// StragglerResultJSON records one straggler-attribution battery: how many of
// the merged trace's per-step skew rows named the rank carrying the injected
// delay, the per-rank straggler tally, and the largest wait spread observed.
type StragglerResultJSON struct {
	Pass        bool    `json:"pass"`
	DelayedRank int     `json:"delayed_rank"`
	SkewSteps   int     `json:"skew_steps"`
	Attributed  int     `json:"attributed_steps"`
	Counts      []int64 `json:"straggler_counts,omitempty"`
	MaxSkewMs   float64 `json:"max_skew_ms"`
	ElapsedMs   float64 `json:"elapsed_ms"`
	Detail      string  `json:"detail,omitempty"`
}

// StragglerJSON converts a battery verdict to its JSON form.
func StragglerJSON(r StragglerResult) StragglerResultJSON {
	return StragglerResultJSON{
		Pass:        r.Pass,
		DelayedRank: r.DelayedRank,
		SkewSteps:   r.SkewSteps,
		Attributed:  r.Attributed,
		Counts:      r.Counts,
		MaxSkewMs:   float64(r.MaxSkewNs) / 1e6,
		ElapsedMs:   float64(r.Elapsed) / float64(time.Millisecond),
		Detail:      r.Detail,
	}
}

// WriteRunSummaryDir writes the summary into dir as an auto-named artifact,
// RUN_<kind>.json (kind sanitized for the filesystem), and returns the path
// written. This is the directory counterpart of WriteRunSummary, so every CLI
// can take one artifacts directory instead of a per-tool file-path flag.
func WriteRunSummaryDir(dir string, s *RunSummary) (string, error) {
	kind := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, s.Kind)
	if kind == "" {
		kind = "run"
	}
	path := filepath.Join(dir, "RUN_"+kind+".json")
	return path, WriteRunSummary(path, s)
}

// WriteRunSummary writes the summary as indented JSON, creating parent
// directories as needed.
func WriteRunSummary(path string, s *RunSummary) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("harness: creating run summary dir: %w", err)
	}
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("harness: encoding run summary: %w", err)
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("harness: writing run summary: %w", err)
	}
	return nil
}
