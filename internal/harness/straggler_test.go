package harness

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/telemetry/xrank"
)

// TestStragglerAttribution is the acceptance check for the skew analytics:
// a 4-rank run with one rank delayed before every allreduce must attribute
// ≥90% of the merged trace's steps to that rank, and the artifacts dir must
// come out loadable by gracestat (a parseable trace + skew summary naming
// the same rank).
func TestStragglerAttribution(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultStraggler(4, 7)
	cfg.ArtifactsDir = dir
	res := RunStraggler(cfg)
	for rank, err := range res.Errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	if !res.Pass {
		t.Fatalf("battery failed: %s (counts=%v)", res.Detail, res.Counts)
	}
	if res.DelayedRank != 2 {
		t.Fatalf("DefaultStraggler(4) should delay rank 2, got %d", res.DelayedRank)
	}

	raw, err := os.ReadFile(filepath.Join(dir, xrank.SkewFile))
	if err != nil {
		t.Fatalf("skew artifact: %v", err)
	}
	var s xrank.SkewSummary
	if err := json.Unmarshal(raw, &s); err != nil {
		t.Fatalf("skew artifact does not parse: %v", err)
	}
	if s.Size != 4 || s.Steps != res.SkewSteps {
		t.Fatalf("skew summary mismatch: size=%d steps=%d want 4/%d", s.Size, s.Steps, res.SkewSteps)
	}
	var best, bestRank int64 = -1, -1
	for r, n := range s.StragglerSteps {
		if n > best {
			best, bestRank = n, int64(r)
		}
	}
	if bestRank != int64(cfg.DelayRank) {
		t.Fatalf("skew summary names rank %d the top straggler, injected %d (%v)",
			bestRank, cfg.DelayRank, s.StragglerSteps)
	}
	if _, err := os.Stat(filepath.Join(dir, xrank.TraceFile)); err != nil {
		t.Fatalf("trace artifact: %v", err)
	}
}
