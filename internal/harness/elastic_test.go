package harness

import (
	"testing"
)

// runElasticCase executes the degrade-and-continue scenario on one transport
// and requires the acceptance contract: the survivors commit exactly N−1 with
// the victim evicted, roll back to the step-3 checkpoint (kill at step 5,
// cadence 3), and finish bitwise-identical to a reference N−1 run started
// from the post-reform state.
func runElasticCase(t *testing.T, cfg RecoveryConfig) {
	t.Helper()
	res, err := RunElastic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Match {
		t.Fatalf("degraded run diverged from the N-1 reference: %s", res.Detail)
	}
	if res.ShrinkStep != 3 {
		t.Fatalf("shrink rolled back to step %d, want 3", res.ShrinkStep)
	}
	if res.ShrinkSize != cfg.Train.Workers-1 {
		t.Fatalf("shrink committed size %d, want %d", res.ShrinkSize, cfg.Train.Workers-1)
	}
	if len(res.Lost) != 1 || res.Lost[0] != cfg.KillRank {
		t.Fatalf("shrink evicted %v, want [%d]", res.Lost, cfg.KillRank)
	}
	if res.Downtime <= 0 {
		t.Fatalf("downtime %v not measured", res.Downtime)
	}
	if cfg.Train.UseMemory {
		// One EF residual set declared lost per tensor per evicted rank, on
		// each survivor. The counter is process-wide, so concurrent batteries
		// could inflate it — require at least the per-run minimum.
		if res.EFDrops <= 0 {
			t.Fatalf("EF-drop counter did not move despite error-feedback memory on")
		}
	} else if res.EFDrops != 0 {
		t.Fatalf("EF-drop counter moved by %d with error-feedback memory off", res.EFDrops)
	}
}

func TestElasticShrinkBitwiseHub(t *testing.T) {
	for _, tc := range []struct {
		method string
		mem    bool
	}{
		{"topk", true}, // stateless codec + framework EF memory
		{"dgc", false}, // codec-internal EF state
	} {
		t.Run(tc.method, func(t *testing.T) {
			runElasticCase(t, DefaultElastic(TransportHub, tc.method, tc.mem, t.TempDir()))
		})
	}
}

func TestElasticShrinkBitwiseTCP(t *testing.T) {
	runElasticCase(t, DefaultElastic(TransportTCP, "topk", true, t.TempDir()))
}

// TestElasticGrowHub: after the shrink, a fresh worker presents under the
// lost original rank; the members' join beacon absorbs it and every rank —
// including the joiner, which adopted its state from a donor snapshot — must
// finish at the full world size.
func TestElasticGrowHub(t *testing.T) {
	cfg := DefaultElastic(TransportHub, "topk", true, t.TempDir())
	res, err := RunElasticGrow(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := cfg.Train.Workers
	if res.GrowSize != n {
		t.Fatalf("grow committed size %d, want %d", res.GrowSize, n)
	}
	if res.GrowStep <= res.ShrinkStep {
		t.Fatalf("grow rolled back to step %d, not after the shrink step %d", res.GrowStep, res.ShrinkStep)
	}
	for rank, launches := range res.Launches {
		want := 1
		if rank == cfg.KillRank {
			want = 2 // first incarnation dies; a fresh joiner replaces it
		}
		if launches != want {
			t.Fatalf("rank %d launched %d times, want %d", rank, launches, want)
		}
	}
	if res.GrowDowntime <= 0 {
		t.Fatalf("grow downtime %v not measured", res.GrowDowntime)
	}
	// Synchronous data-parallel training keeps the replicas identical: the
	// joiner's final params must match a survivor's bit for bit.
	ok, detail := snapshotsBitwiseEqual(
		res.Finals[cfg.KillRank:cfg.KillRank+1], res.Finals[0:1])
	if !ok {
		t.Fatalf("joiner finals diverged from rank 0: %s", detail)
	}
}
