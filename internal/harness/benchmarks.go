package harness

import (
	"fmt"
	"time"

	"repro/internal/data"
	"repro/internal/grace"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/optim"
)

// Benchmark is one row of the paper's Table II, scaled to the Go substrate.
// ComputePerIter models the V100 forward/backward time of one iteration; it
// is chosen so the ratio of communication volume to compute time matches the
// paper's benchmark (compute-bound vs communication-bound character — see
// EXPERIMENTS.md for the calibration).
type Benchmark struct {
	Name          string
	PaperModel    string // the Table II model this stands in for
	Task          string
	Metric        string
	LowerIsBetter bool

	BatchSize      int
	Epochs         int
	ComputePerIter time.Duration

	NewModel     func(seed uint64) grace.Model
	NewDataset   func() data.Dataset
	NewOptimizer func() optim.Optimizer
	// NewEval returns the quality evaluator (bound to a held-out set).
	NewEval func() func(m grace.Model) float64
}

// scaledEpochs applies the harness scale factor (cheap CI runs vs full runs).
func (b Benchmark) scaledEpochs(scale float64) int {
	e := int(float64(b.Epochs) * scale)
	if e < 1 {
		e = 1
	}
	return e
}

// Benchmarks returns the suite in Table II order. Dataset construction is
// deferred so callers only pay for what they run.
func Benchmarks() []Benchmark {
	return []Benchmark{
		cnnSmall(), cnnMid(), cnnFast(), mlpWide(), smallLayer(), cnnLarge(), ncf(), lstmPTB(), segNet(),
	}
}

// BenchmarkByName finds a benchmark.
func BenchmarkByName(name string) (Benchmark, error) {
	for _, b := range Benchmarks() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("harness: unknown benchmark %q", name)
}

// --- Image classification ---

func imagePair(classes, n int, seed uint64) (train, test data.Dataset) {
	cfg := data.ImagesConfig{Classes: classes, C: 1, H: 16, W: 16, N: n, Noise: 1.3, Seed: seed}
	train = data.NewImages(cfg)
	cfg.N = n / 4
	cfg.SampleSalt = 1
	test = data.NewImages(cfg)
	return train, test
}

func classifierEval(test data.Dataset) func(m grace.Model) float64 {
	return func(m grace.Model) float64 {
		return models.EvalAccuracy(m.(*models.Classifier), test, 64)
	}
}

// cnnSmall stands in for ResNet-20 on CIFAR-10: small parameter count
// relative to convolution compute — hard compute-bound (Fig 6a).
func cnnSmall() Benchmark {
	return Benchmark{
		Name: "cnnsmall", PaperModel: "ResNet-20 / CIFAR-10",
		Task: "image classification", Metric: "top-1 accuracy",
		BatchSize: 16, Epochs: 10, ComputePerIter: 25 * time.Millisecond,
		NewModel: func(seed uint64) grace.Model {
			return models.NewCNNClassifier(seed, models.CNNConfig{
				InC: 1, H: 16, W: 16, Channels: []int{8, 16}, Hidden: 32, Classes: 10})
		},
		NewDataset:   func() data.Dataset { tr, _ := imagePair(10, 640, 11); return tr },
		NewOptimizer: func() optim.Optimizer { return optim.NewMomentumSGD(0.02, 0.9) },
		NewEval: func() func(m grace.Model) float64 {
			_, te := imagePair(10, 640, 11)
			return classifierEval(te)
		},
	}
}

// cnnMid stands in for DenseNet40-K12 on CIFAR-10 (Fig 6b): deeper, still
// compute-bound.
func cnnMid() Benchmark {
	return Benchmark{
		Name: "cnnmid", PaperModel: "DenseNet40-K12 / CIFAR-10",
		Task: "image classification", Metric: "top-1 accuracy",
		BatchSize: 16, Epochs: 10, ComputePerIter: 30 * time.Millisecond,
		NewModel: func(seed uint64) grace.Model {
			return models.NewCNNClassifier(seed, models.CNNConfig{
				InC: 1, H: 16, W: 16, Channels: []int{8, 16, 32}, Hidden: 32, Classes: 10})
		},
		NewDataset:   func() data.Dataset { tr, _ := imagePair(10, 640, 13); return tr },
		NewOptimizer: func() optim.Optimizer { return optim.NewMomentumSGD(0.02, 0.9) },
		NewEval: func() func(m grace.Model) float64 {
			_, te := imagePair(10, 640, 13)
			return classifierEval(te)
		},
	}
}

// cnnFast stands in for the custom ResNet-9 (Fig 9): a fast model where
// transport differences (TCP vs RDMA) show clearly.
func cnnFast() Benchmark {
	return Benchmark{
		Name: "cnnfast", PaperModel: "ResNet-9 / CIFAR-10",
		Task: "image classification", Metric: "top-1 accuracy",
		BatchSize: 32, Epochs: 6, ComputePerIter: 4 * time.Millisecond,
		NewModel: func(seed uint64) grace.Model {
			return models.NewCNNClassifier(seed, models.CNNConfig{
				InC: 1, H: 16, W: 16, Channels: []int{16, 32}, Hidden: 64, Classes: 10})
		},
		NewDataset:   func() data.Dataset { tr, _ := imagePair(10, 640, 17); return tr },
		NewOptimizer: func() optim.Optimizer { return optim.NewSGD(0.04) },
		NewEval: func() func(m grace.Model) float64 {
			_, te := imagePair(10, 640, 17)
			return classifierEval(te)
		},
	}
}

// mlpWide stands in for VGG-16 on CIFAR-10: parameters concentrated in wide
// dense layers, gradient volume large relative to compute —
// communication-bound (Fig 1, Fig 6 discussion).
func mlpWide() Benchmark {
	return Benchmark{
		Name: "mlpwide", PaperModel: "VGG-16 / CIFAR-10",
		Task: "image classification", Metric: "top-1 accuracy",
		BatchSize: 16, Epochs: 10, ComputePerIter: 3 * time.Millisecond,
		NewModel: func(seed uint64) grace.Model {
			return models.NewMLPClassifier(seed, 256, []int{768, 384}, 10)
		},
		NewDataset:   func() data.Dataset { tr, _ := imagePair(10, 640, 19); return tr },
		NewOptimizer: func() optim.Optimizer { return optim.NewMomentumSGD(0.02, 0.9) },
		NewEval: func() func(m grace.Model) float64 {
			_, te := imagePair(10, 640, 19)
			return classifierEval(te)
		},
	}
}

// smallLayer is the autotuner's stress model: one wide dense layer next to
// several small ones, with near-zero compute, so per-tensor communication
// cost dominates and differs by orders of magnitude across tensors. The
// right policy is heterogeneous — sparsify the wide layer, leave the small
// ones (where α dominates and compression only adds codec time) alone —
// which a single static method cannot express.
func smallLayer() Benchmark {
	return Benchmark{
		Name: "smalllayer", PaperModel: "mixed-width dense stack (autotune study)",
		Task: "image classification", Metric: "top-1 accuracy",
		BatchSize: 16, Epochs: 6, ComputePerIter: 500 * time.Microsecond,
		NewModel: func(seed uint64) grace.Model {
			return models.NewMLPClassifier(seed, 256, []int{512, 32, 16}, 10)
		},
		NewDataset:   func() data.Dataset { tr, _ := imagePair(10, 640, 29); return tr },
		NewOptimizer: func() optim.Optimizer { return optim.NewMomentumSGD(0.02, 0.9) },
		NewEval: func() func(m grace.Model) float64 {
			_, te := imagePair(10, 640, 29)
			return classifierEval(te)
		},
	}
}

// cnnLarge stands in for ResNet-50 on ImageNet (Fig 6c, Fig 10): borderline
// between compute- and communication-bound at 10 Gbps, so dropping to 1 Gbps
// flips many methods into the winning region.
func cnnLarge() Benchmark {
	return Benchmark{
		Name: "cnnlarge", PaperModel: "ResNet-50 / ImageNet",
		Task: "image classification", Metric: "top-1 accuracy",
		BatchSize: 16, Epochs: 8, ComputePerIter: 12 * time.Millisecond,
		NewModel: func(seed uint64) grace.Model {
			return models.NewCNNClassifier(seed, models.CNNConfig{
				InC: 1, H: 16, W: 16, Channels: []int{8, 16}, Hidden: 128, Classes: 20})
		},
		NewDataset:   func() data.Dataset { tr, _ := imagePair(20, 800, 23); return tr },
		NewOptimizer: func() optim.Optimizer { return optim.NewMomentumSGD(0.02, 0.9) },
		NewEval: func() func(m grace.Model) float64 {
			_, te := imagePair(20, 800, 23)
			return classifierEval(te)
		},
	}
}

// --- Recommendation ---

func ncfData() *data.Ratings {
	return data.NewRatings(data.RatingsConfig{
		Users: 300, Items: 600, LatentDim: 4, PosPerUser: 10, NegPerPos: 4, Seed: 29})
}

// ncf stands in for NCF on MovieLens-20M (Fig 6d): embedding tables dominate
// parameters while per-iteration compute is trivial — the most
// communication-bound benchmark, where compressors reach multi-x speedups.
func ncf() Benchmark {
	return Benchmark{
		Name: "ncf", PaperModel: "NCF / MovieLens-20M",
		Task: "recommendation", Metric: "best hit rate",
		BatchSize: 64, Epochs: 8, ComputePerIter: 300 * time.Microsecond,
		NewModel: func(seed uint64) grace.Model {
			return models.NewNCF(seed, 300, 600, 32, []int{32, 16})
		},
		NewDataset:   func() data.Dataset { return ncfData() },
		NewOptimizer: func() optim.Optimizer { return optim.NewAdam(0.005) },
		NewEval: func() func(m grace.Model) float64 {
			eval := ncfData()
			return func(m grace.Model) float64 {
				return models.EvalHitRate(m.(*models.NCF), eval)
			}
		},
	}
}

// --- Language modeling ---

func lstmData() *data.TokenStream {
	return data.NewTokenStream(data.TokenConfig{
		Vocab: 200, SeqLen: 8, TrainTok: 8000, TestTok: 1600, Successors: 4, Seed: 31})
}

// lstmPTB stands in for the LSTM on Penn Treebank (Fig 6e): few but large
// gradient tensors (embedding + recurrent weights), moderately
// communication-bound.
func lstmPTB() Benchmark {
	return Benchmark{
		Name: "lstm", PaperModel: "LSTM / PTB",
		Task: "language modeling", Metric: "test perplexity", LowerIsBetter: true,
		BatchSize: 16, Epochs: 8, ComputePerIter: 2 * time.Millisecond,
		NewModel: func(seed uint64) grace.Model {
			return models.NewLSTMLM(seed, 200, 32, 64)
		},
		// The paper trains its LM with vanilla SGD; at this scale SGD needs
		// far more epochs than the harness budget, so the benchmark uses
		// ADAM (Algorithm 1 is optimizer-independent; see EXPERIMENTS.md).
		NewDataset:   func() data.Dataset { return lstmData() },
		NewOptimizer: func() optim.Optimizer { return optim.NewAdam(0.01) },
		NewEval: func() func(m grace.Model) float64 {
			eval := lstmData()
			return func(m grace.Model) float64 {
				return models.EvalPerplexity(m.(*models.LSTMLM), eval)
			}
		},
	}
}

// --- Segmentation ---

func segData(n int, salt uint64) data.Dataset {
	return data.NewBlobs(data.BlobsConfig{H: 16, W: 16, N: n, Noise: 0.3, Seed: 37 + salt})
}

// segNet stands in for U-Net on DAGM2007 (Fig 6f): convolution-heavy with a
// small parameter count — compute-bound, so no compressor wins on throughput.
func segNet() Benchmark {
	return Benchmark{
		Name: "segnet", PaperModel: "U-Net / DAGM2007",
		Task: "image segmentation", Metric: "IoU@0.125",
		BatchSize: 8, Epochs: 8, ComputePerIter: 35 * time.Millisecond,
		NewModel: func(seed uint64) grace.Model {
			return models.NewSegNet(seed, []int{8, 16})
		},
		NewDataset:   func() data.Dataset { return segData(320, 0) },
		NewOptimizer: func() optim.Optimizer { return optim.NewRMSProp(0.002) },
		NewEval: func() func(m grace.Model) float64 {
			eval := segData(64, 1)
			return func(m grace.Model) float64 {
				return models.EvalIoU(m.(*models.SegNet), eval, 16)
			}
		},
	}
}

// GradientVectors counts a model's parameter tensors (the paper's "gradient
// vectors" column).
func GradientVectors(m grace.Model) int { return len(m.Params()) }

// TrainingParams counts scalar parameters.
func TrainingParams(m grace.Model) int { return nn.NumParams(m.Params()) }
