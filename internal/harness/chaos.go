package harness

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/fxrand"
	"repro/internal/grace"
	"repro/internal/grace/autotune"
	"repro/internal/simnet"
)

// ChaosScenario is one fault-injection experiment: a comm.Plan applied to
// every worker's collective handle, plus the expected outcome.
type ChaosScenario struct {
	Name string
	Plan comm.Plan
	// DecodeFallback enables the Engine's graceful decode recovery.
	DecodeFallback bool
	// ExpectError marks scenarios whose faults are fatal by design (drop,
	// reset): the scenario passes when every rank surfaces a typed error
	// within the timeout, rather than when the run completes.
	ExpectError bool
	// Retry, when non-nil, wraps every rank's collective in comm.Resilient
	// with this policy: transient faults (drops, resets, aborts) are healed
	// by group reform plus bounded retry instead of surfacing. A retrying
	// scenario with ExpectError false must complete cleanly AND actually
	// absorb injected faults — zero injections fails the verdict, since the
	// scenario would prove nothing. Fault windows must be bounded (ToStep):
	// the Faulty step counter advances per attempt, so an open-ended rule
	// re-fires on every retry until the budget burns out.
	Retry *comm.RetryPolicy
}

// ChaosConfig describes a chaos sweep: a synthetic multi-tensor exchange
// workload (no model, no optimizer — just the Engine over a fault-injected
// hub) run once per scenario.
type ChaosConfig struct {
	Workers int
	Tensors int
	Steps   int
	Method  string
	Opts    grace.Options
	Timeout time.Duration
	// FusionBytes, when > 0, runs the battery with tensor-fusion batching at
	// that bucket fill target, so fault injection also exercises the fused
	// collective schedule (corrupt fused frames, fused recovery rounds).
	FusionBytes int
	// NewTuner, when set, runs every scenario's engines in autotuning mode
	// (with the framework error-feedback memory) instead of the fixed
	// Method/Opts compressor, so faults also hit warmup probing, scored
	// switches, and flush handoffs. Mutually exclusive with FusionBytes —
	// the Engine rejects fusion in tuner mode.
	NewTuner  func() (grace.Tuner, error)
	Scenarios []ChaosScenario
}

// ChaosResult is one scenario's verdict.
type ChaosResult struct {
	Scenario string
	// Pass is the scenario-level verdict: completed cleanly when expected
	// to, or produced typed errors everywhere when a fatal fault was
	// injected — and never hung.
	Pass bool
	// Hung reports that the watchdog fired; the group was aborted to
	// reclaim the workers.
	Hung    bool
	Elapsed time.Duration
	// Injected counts the faults the plan actually fired, across ranks.
	Injected int64
	// Retries counts the transient failures absorbed by comm.Resilient across
	// ranks (0 unless the scenario sets Retry).
	Retries int64
	// Faults / Fallbacks sum the Engines' decode-fault and recovery
	// counters across ranks and steps.
	Faults    int
	Fallbacks int
	// Errs holds each rank's first error (nil entries for clean ranks).
	Errs []error
	// Detail explains a failed verdict.
	Detail string
}

// DefaultChaos is the standard chaos battery: benign latency faults that must
// not change results, a corruption scenario that must degrade gracefully
// under DecodeFallback, and fatal drop/reset scenarios that must surface
// typed errors on every rank instead of deadlocking.
func DefaultChaos(workers int, seed uint64) ChaosConfig {
	if workers < 3 {
		workers = 3
	}
	return ChaosConfig{
		Workers: workers,
		Tensors: 6,
		Steps:   6,
		Method:  "topk",
		Opts:    grace.Options{Ratio: 0.25},
		Timeout: 30 * time.Second,
		// Run fused — two tensors per bucket at these shapes, three collective
		// rounds per step — so faults hit fused frames and recovery degrades
		// whole buckets, while the drop/reset FromStep op counts below still
		// land mid-run.
		FusionBytes: 1024,
		Scenarios: []ChaosScenario{
			{Name: "clean", Plan: comm.Plan{Seed: seed}},
			{Name: "delay", Plan: comm.Plan{Seed: seed, Faults: []comm.Fault{
				{Kind: comm.FaultDelay, Rank: 0, Op: comm.OpAllgather, Prob: 0.5, Delay: 200 * time.Microsecond},
			}}},
			{Name: "stall", Plan: comm.Plan{Seed: seed, Faults: []comm.Fault{
				{Kind: comm.FaultStall, Rank: 1, Prob: 0.5, Delay: 200 * time.Microsecond},
			}}},
			{Name: "corrupt+fallback", DecodeFallback: true, Plan: comm.Plan{Seed: seed, Faults: []comm.Fault{
				{Kind: comm.FaultCorrupt, Rank: 0, Op: comm.OpAllgather, Prob: 0.5},
			}}},
			{Name: "drop", ExpectError: true, Plan: comm.Plan{Seed: seed, Faults: []comm.Fault{
				{Kind: comm.FaultDrop, Rank: 1, Op: comm.OpAllgather, FromStep: 8},
			}}},
			{Name: "reset", ExpectError: true, Plan: comm.Plan{Seed: seed, Faults: []comm.Fault{
				{Kind: comm.FaultReset, Rank: 2, Op: comm.OpAllgather, FromStep: 14},
			}}},
			// The same fatal fault kinds, but transient (bounded windows) and
			// with the Resilient wrapper on: the group must absorb them via
			// reform+retry and finish with no supervisor intervention. Windows
			// span 2 attempt-steps — under the per-op cap of 3 the retried op
			// re-fires the fault at most once before escaping the window.
			{Name: "drop+retry", Retry: &comm.RetryPolicy{Seed: seed, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond},
				Plan: comm.Plan{Seed: seed, Faults: []comm.Fault{
					{Kind: comm.FaultDrop, Rank: 1, Op: comm.OpAllgather, FromStep: 4, ToStep: 5},
				}}},
			{Name: "reset+retry", Retry: &comm.RetryPolicy{Seed: seed, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond},
				Plan: comm.Plan{Seed: seed, Faults: []comm.Fault{
					{Kind: comm.FaultReset, Rank: 2, Op: comm.OpAllgather, FromStep: 8, ToStep: 9},
				}}},
		},
	}
}

// AutotuneChaos is DefaultChaos with the engines in autotuning mode: the
// same fault battery, but run through the policy engine with a short
// decision cadence, so injected faults land on warmup probes, scored
// switches, and flush handoffs alike.
func AutotuneChaos(workers int, seed uint64) ChaosConfig {
	cfg := DefaultChaos(workers, seed)
	cfg.Method, cfg.Opts = "", grace.Options{}
	cfg.FusionBytes = 0
	cfg.Steps = 12
	// The tuner interleaves probe/score/policy ops with the gradient
	// exchange, so the retry scenarios' bounded windows — indexed by the
	// per-handle op counter — can land on any op kind. Drop the allgather
	// filter there or the window slides past without firing.
	for i, sc := range cfg.Scenarios {
		if sc.Retry != nil {
			for j := range sc.Plan.Faults {
				cfg.Scenarios[i].Plan.Faults[j].Op = ""
			}
		}
	}
	cfg.NewTuner = func() (grace.Tuner, error) {
		return autotune.New(autotune.Config{
			Candidates: autotune.DefaultCandidates(),
			Every:      2,
			Workers:    cfg.Workers,
			Link:       simnet.TCP1G,
		})
	}
	return cfg
}

// RunChaos executes every scenario and returns one result per scenario. A
// watchdog aborts the collective group if a scenario exceeds cfg.Timeout, so
// a deadlock becomes a failed (Hung) result instead of a stuck process.
func RunChaos(cfg ChaosConfig) []ChaosResult {
	results := make([]ChaosResult, 0, len(cfg.Scenarios))
	for _, sc := range cfg.Scenarios {
		results = append(results, runChaosScenario(cfg, sc))
	}
	return results
}

func runChaosScenario(cfg ChaosConfig, sc ChaosScenario) ChaosResult {
	res := ChaosResult{Scenario: sc.Name, Errs: make([]error, cfg.Workers)}
	infos := chaosInfos(cfg.Tensors)
	hub := comm.NewHub(cfg.Workers)
	faulties := make([]*comm.Faulty, cfg.Workers)
	resilients := make([]*comm.Resilient, cfg.Workers)
	var faultSum, fallbackSum int
	if sc.Retry != nil {
		// A retrying scenario's reform rendezvous must give up well before the
		// scenario watchdog, so a rank that died outright (bug) turns into a
		// typed error instead of a Hung verdict.
		timeout := cfg.Timeout
		if timeout <= 0 {
			timeout = 30 * time.Second
		}
		hub.SetReformTimeout(timeout / 2)
	}

	start := time.Now()
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		var mu sync.Mutex
		for rank := 0; rank < cfg.Workers; rank++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				fy := comm.NewFaulty(hub.Worker(rank), sc.Plan)
				faulties[rank] = fy
				var coll comm.Collective = fy
				if sc.Retry != nil {
					rs := comm.NewResilient(fy, *sc.Retry)
					resilients[rank] = rs
					coll = rs
				}
				engOpts := []grace.EngineOption{
					grace.WithCollective(coll),
					grace.WithParallelism(2),
					grace.WithDecodeFallback(sc.DecodeFallback),
				}
				if cfg.NewTuner != nil {
					tn, err := cfg.NewTuner()
					if err != nil {
						res.Errs[rank] = err
						return
					}
					engOpts = append(engOpts,
						grace.WithTuner(tn),
						grace.WithEngineMemory(grace.NewMemory(1, 1)))
				} else {
					engOpts = append(engOpts,
						grace.WithCompressorFactory(func() (grace.Compressor, error) {
							return grace.New(cfg.Method, cfg.Opts)
						}),
						grace.WithFusionBytes(cfg.FusionBytes))
				}
				eng, err := grace.NewEngine(engOpts...)
				if err != nil {
					res.Errs[rank] = err
					return
				}
				for step := 0; step < cfg.Steps; step++ {
					_, rep, err := eng.Step(chaosGrads(rank, step, infos), infos)
					if err != nil {
						res.Errs[rank] = err
						return
					}
					mu.Lock()
					faultSum += rep.Faults
					fallbackSum += rep.Fallbacks
					mu.Unlock()
				}
			}(rank)
		}
		wg.Wait()
	}()

	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	select {
	case <-done:
	case <-time.After(timeout):
		res.Hung = true
		// Reclaim the blocked workers so the sweep can continue.
		hub.Abort(fmt.Errorf("chaos watchdog: scenario %q exceeded %v", sc.Name, timeout))
		<-done
	}
	res.Elapsed = time.Since(start)
	res.Faults = faultSum
	res.Fallbacks = fallbackSum
	for _, fy := range faulties {
		if fy != nil {
			res.Injected += fy.Counts().Total()
		}
	}
	for _, rs := range resilients {
		if rs != nil {
			res.Retries += rs.Retries()
		}
	}
	res.Pass, res.Detail = chaosVerdict(sc, &res)
	return res
}

// chaosVerdict applies the scenario's expectation to what happened.
func chaosVerdict(sc ChaosScenario, res *ChaosResult) (bool, string) {
	if res.Hung {
		return false, "deadlock: watchdog aborted the group"
	}
	if !sc.ExpectError {
		for rank, err := range res.Errs {
			if err != nil {
				return false, fmt.Sprintf("rank %d failed: %v", rank, err)
			}
		}
		if sc.Retry != nil && res.Injected == 0 {
			return false, "retry scenario injected no faults; the clean finish proves nothing"
		}
		return true, ""
	}
	for rank, err := range res.Errs {
		if err == nil {
			return false, fmt.Sprintf("rank %d completed despite a fatal fault", rank)
		}
		var se *grace.StepError
		var ce *comm.Error
		if !errors.As(err, &se) && !errors.As(err, &ce) {
			return false, fmt.Sprintf("rank %d error is untyped: %v", rank, err)
		}
	}
	return true, ""
}

// chaosInfos builds the synthetic tensor set: alternating matrices and
// vectors, as in the engine tests.
func chaosInfos(m int) []grace.TensorInfo {
	infos := make([]grace.TensorInfo, m)
	for i := range infos {
		shape := []int{16, 8}
		if i%2 == 1 {
			shape = []int{23}
		}
		infos[i] = grace.NewTensorInfo(fmt.Sprintf("chaos%d", i), shape)
	}
	return infos
}

func chaosGrads(rank, step int, infos []grace.TensorInfo) [][]float32 {
	r := fxrand.New(uint64(rank)*7919 + uint64(step) + 1)
	out := make([][]float32, len(infos))
	for i, info := range infos {
		g := make([]float32, info.Size())
		for j := range g {
			g[j] = r.NormFloat32() * 0.1
		}
		out[i] = g
	}
	return out
}
