package harness

import (
	"time"

	"repro/internal/fxrand"
	"repro/internal/grace"
)

// ablationTensor builds the gradient used by the codec ablations: 1M
// elements with the heavy-tailed shape of real gradients (mostly small
// values with occasional large ones), which is what entropy coding exploits.
func ablationTensor(seed uint64) ([]float32, grace.TensorInfo) {
	const d = 1 << 20
	info := grace.NewTensorInfo("abl", []int{1024, d / 1024})
	r := fxrand.New(seed)
	g := make([]float32, d)
	for i := range g {
		v := r.NormFloat32() * 0.02
		if r.Bernoulli(0.02) {
			v = r.NormFloat32() * 0.5
		}
		g[i] = v
	}
	return g, info
}

// runHuffAblation quantifies the Huffman lossless-stage extension ([81] in
// the paper's related work): wire volume and codec latency with and without
// entropy coding, for TernGrad and QSGD.
func runHuffAblation(sc SweepConfig) ([]*Table, error) {
	g, info := ablationTensor(7)
	t := &Table{
		Title:  "Ablation: Huffman entropy-coding stage (4MB heavy-tailed gradient)",
		Header: []string{"method", "wire bytes", "bits/elem", "codec (ms)"},
	}
	cases := []struct {
		label string
		name  string
		opts  grace.Options
	}{
		{"TernGrad", "terngrad", grace.Options{Seed: 1}},
		{"TernGrad+Huffman", "huffterngrad", grace.Options{Seed: 1}},
		{"QSGD(8)", "qsgd", grace.Options{Levels: 8, Seed: 1}},
		{"QSGD(8)+Huffman", "huffqsgd", grace.Options{Levels: 8, Seed: 1}},
	}
	for _, cse := range cases {
		c, err := grace.New(cse.name, cse.opts)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		p, err := c.Compress(g, info)
		if err != nil {
			return nil, err
		}
		if _, err := c.Decompress(p, info); err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		t.AddRow(cse.label, p.WireBytes(),
			float64(p.WireBytes()*8)/float64(len(g)),
			float64(elapsed)/1e6)
	}
	return []*Table{t}, nil
}

// runPSAblation compares the peer (ring) collectives against the
// parameter-server topology the framework also supports (§IV-A): the star's
// central link serializes all payloads, so the dense baseline suffers most
// while aggressive compression narrows the gap.
func runPSAblation(sc SweepConfig) ([]*Table, error) {
	b, err := BenchmarkByName("mlpwide")
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Ablation: ring allreduce vs parameter server (VGG-16 stand-in)",
		Header: []string{"method", "ring (samples/s)", "param server (samples/s)", "ring/ps"},
	}
	specs := []MethodSpec{
		{Label: "Baseline", Name: "none"},
		{Label: "Topk(0.01)", Name: "topk", Opts: grace.Options{Ratio: 0.01}, EF: true},
		{Label: "TernGrad", Name: "terngrad"},
	}
	for _, spec := range specs {
		ring, err := RunOne(b, spec, sc)
		if err != nil {
			return nil, err
		}
		ps, err := runOnePS(b, spec, sc)
		if err != nil {
			return nil, err
		}
		ratio := 0.0
		if ps.Throughput > 0 {
			ratio = ring.Throughput / ps.Throughput
		}
		t.AddRow(spec.Label, ring.Throughput, ps.Throughput, ratio)
	}
	return []*Table{t}, nil
}

// runLocalSGD evaluates Qsparse-local-SGD [20] (Table I's remaining hybrid
// row): quantized or sparsified synchronization every H local steps. Volume
// per iteration drops roughly as 1/H on top of the compressor's own ratio;
// quality degrades gracefully with H.
func runLocalSGD(sc SweepConfig) ([]*Table, error) {
	b, err := BenchmarkByName("mlpwide")
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Qsparse-local-SGD: compressed sync every H local steps (VGG-16 stand-in)",
		Header: []string{"method", "H", b.Metric, "rel throughput", "bytes/iter"},
	}
	methods := []MethodSpec{
		{Label: "Baseline", Name: "none"},
		{Label: "QSGD(64)", Name: "qsgd", Opts: grace.Options{Levels: 64}},
		{Label: "Topk(0.01)", Name: "topk", Opts: grace.Options{Ratio: 0.01}, EF: true},
	}
	var baseTP float64
	for _, m := range methods {
		for _, h := range []int{1, 4} {
			rep, err := runOneLocal(b, m, sc, h)
			if err != nil {
				return nil, err
			}
			if m.Name == "none" && h == 1 {
				baseTP = rep.Throughput
			}
			rel := 0.0
			if baseTP > 0 {
				rel = rep.Throughput / baseTP
			}
			t.AddRow(m.Label, h, rep.BestQuality, rel, rep.BytesPerIter)
		}
	}
	return []*Table{t}, nil
}

func runOneLocal(b Benchmark, spec MethodSpec, sc SweepConfig, syncEvery int) (*grace.Report, error) {
	cfg := grace.Config{
		Workers:      sc.Workers,
		BatchSize:    b.BatchSize,
		Epochs:       b.scaledEpochs(sc.Scale),
		Seed:         sc.Seed,
		NewModel:     b.NewModel,
		Dataset:      b.NewDataset(),
		NewOptimizer: b.NewOptimizer,
		NewCompressor: func(rank int) (grace.Compressor, error) {
			opts := spec.Opts
			opts.Seed = sc.Seed*1000 + uint64(rank)
			return grace.New(spec.Name, opts)
		},
		UseMemory:            spec.EF,
		SyncEvery:            syncEvery,
		Net:                  sc.Net,
		ComputePerIter:       b.ComputePerIter,
		Eval:                 b.NewEval(),
		QualityLowerIsBetter: b.LowerIsBetter,
	}
	return grace.Run(cfg)
}

// runOnePS is RunOne with the parameter-server topology enabled.
func runOnePS(b Benchmark, spec MethodSpec, sc SweepConfig) (*grace.Report, error) {
	cfg := grace.Config{
		Workers:      sc.Workers,
		BatchSize:    b.BatchSize,
		Epochs:       b.scaledEpochs(sc.Scale),
		Seed:         sc.Seed,
		NewModel:     b.NewModel,
		Dataset:      b.NewDataset(),
		NewOptimizer: b.NewOptimizer,
		NewCompressor: func(rank int) (grace.Compressor, error) {
			opts := spec.Opts
			opts.Seed = sc.Seed*1000 + uint64(rank)
			return grace.New(spec.Name, opts)
		},
		UseMemory:            spec.EF,
		Net:                  sc.Net,
		ParamServer:          true,
		ComputePerIter:       b.ComputePerIter,
		Eval:                 b.NewEval(),
		QualityLowerIsBetter: b.LowerIsBetter,
	}
	return grace.Run(cfg)
}

// runPackingAblation quantifies the bit-packing design choice the paper
// calls out (§V-C footnote: its own Python implementation omits packing, so
// quantized volumes are inflated). For each quantizer we report the packed
// wire size this implementation sends against the size the paper's
// representation would send (one float32 per element plus scales).
func runPackingAblation(sc SweepConfig) ([]*Table, error) {
	g, info := ablationTensor(9)
	d := len(g)
	t := &Table{
		Title:  "Ablation: bit-packing vs the paper's unpacked representation (4MB gradient)",
		Header: []string{"method", "packed bytes", "bits/elem", "unpacked bytes", "packing gain"},
	}
	cases := []struct {
		label    string
		name     string
		opts     grace.Options
		unpacked int // bytes the paper's unpacked form would send
	}{
		{"SignSGD", "signsgd", grace.Options{}, 4 * d},
		{"TernGrad", "terngrad", grace.Options{Seed: 1}, 4*d + 4},
		{"QSGD(64)", "qsgd", grace.Options{Levels: 64, Seed: 1}, 4*d + 4},
		{"8-bit", "eightbit", grace.Options{}, d + 4}, // paper stores 1 byte per 256-level value
		{"3LC", "threelc", grace.Options{}, 4*d + 4},
	}
	for _, cse := range cases {
		c, err := grace.New(cse.name, cse.opts)
		if err != nil {
			return nil, err
		}
		p, err := c.Compress(g, info)
		if err != nil {
			return nil, err
		}
		t.AddRow(cse.label, p.WireBytes(),
			float64(p.WireBytes()*8)/float64(d),
			cse.unpacked,
			float64(cse.unpacked)/float64(p.WireBytes()))
	}
	return []*Table{t}, nil
}
