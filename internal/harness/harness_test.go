package harness

import (
	"bytes"
	"strings"
	"testing"

	_ "repro/internal/compress/all"
	"repro/internal/grace"
	"repro/internal/simnet"
)

func fastSweep() SweepConfig {
	return SweepConfig{Workers: 2, Net: simnet.TCP10G, Scale: 0.2, Seed: 3}
}

func TestTablePrintAndCSV(t *testing.T) {
	tab := &Table{Title: "demo", Header: []string{"a", "b"}}
	tab.AddRow("x", 1.5)
	tab.AddRow("long-label", 1234.5678)
	var buf bytes.Buffer
	tab.Print(&buf)
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "long-label") {
		t.Fatalf("Print output missing content:\n%s", out)
	}
	buf.Reset()
	tab.CSV(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 || lines[0] != "a,b" {
		t.Fatalf("CSV output wrong:\n%s", buf.String())
	}
}

func TestCSVEscaping(t *testing.T) {
	tab := &Table{Title: "q", Header: []string{"v"}}
	tab.AddRow(`with,comma "and quotes"`)
	var buf bytes.Buffer
	tab.CSV(&buf)
	if !strings.Contains(buf.String(), `"with,comma ""and quotes"""`) {
		t.Fatalf("CSV escaping wrong: %s", buf.String())
	}
}

func TestBenchmarksComplete(t *testing.T) {
	want := map[string]bool{
		"cnnsmall": true, "cnnmid": true, "cnnfast": true, "mlpwide": true,
		"cnnlarge": true, "ncf": true, "lstm": true, "segnet": true,
		"smalllayer": true,
	}
	bs := Benchmarks()
	if len(bs) != len(want) {
		t.Fatalf("suite has %d benchmarks, want %d", len(bs), len(want))
	}
	for _, b := range bs {
		if !want[b.Name] {
			t.Fatalf("unexpected benchmark %q", b.Name)
		}
		if b.NewModel == nil || b.NewDataset == nil || b.NewOptimizer == nil || b.NewEval == nil {
			t.Fatalf("%s has nil constructors", b.Name)
		}
		if b.ComputePerIter <= 0 {
			t.Fatalf("%s has no modeled compute time", b.Name)
		}
	}
	if _, err := BenchmarkByName("nope"); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}

func TestBenchmarkCommCharacter(t *testing.T) {
	// The stand-ins must preserve the paper's compute-vs-communication
	// split: for the dense baseline on 8 workers at 10 Gbps, comm time must
	// exceed modeled compute on the comm-bound benchmarks and stay well
	// under it on the compute-bound ones.
	cluster := simnet.NewCluster(simnet.TCP10G, 8)
	commBound := map[string]bool{"mlpwide": true, "ncf": true, "lstm": true, "smalllayer": true}
	for _, b := range Benchmarks() {
		model := b.NewModel(0)
		bytes := 4 * TrainingParams(model)
		// Dense baseline goes through allreduce.
		comm := cluster.AllreduceTime(bytes) * 1 // one fused estimate
		ratio := float64(comm) / float64(b.ComputePerIter)
		if commBound[b.Name] && ratio < 0.8 {
			t.Errorf("%s should be communication-bound (ratio %.2f)", b.Name, ratio)
		}
		if !commBound[b.Name] && b.Name != "cnnlarge" && ratio > 0.5 {
			t.Errorf("%s should be compute-bound (ratio %.2f)", b.Name, ratio)
		}
	}
}

func TestSuiteCoversRegistry(t *testing.T) {
	suite := Suite()
	seen := map[string]bool{}
	for _, s := range suite {
		seen[s.Name] = true
		meta, err := grace.Lookup(s.Name)
		if err != nil {
			t.Fatalf("suite method %q not registered: %v", s.Name, err)
		}
		if s.EF && meta.BuiltinEF {
			t.Errorf("%s: framework EF enabled on a builtin-EF method", s.Name)
		}
	}
	for _, name := range grace.Names() {
		if !seen[name] && !ExtensionMethods[name] {
			t.Errorf("registered method %q missing from evaluation suite", name)
		}
	}
	if _, err := SuiteByLabel("Topk(0.01)"); err != nil {
		t.Fatal(err)
	}
	if _, err := SuiteByLabel("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunOneProducesReport(t *testing.T) {
	b, err := BenchmarkByName("ncf")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunOne(b, MethodSpec{Label: "Topk", Name: "topk", Opts: grace.Options{Ratio: 0.05}, EF: true}, fastSweep())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iters == 0 || rep.Throughput <= 0 || rep.BestQuality <= 0 {
		t.Fatalf("degenerate report: %+v", rep)
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	exps := Experiments()
	want := []string{"table1", "table2", "fig1", "fig6a", "fig6b", "fig6c", "fig6d",
		"fig6e", "fig6f", "fig7a", "fig7b", "fig7c", "fig8", "fig9", "fig10", "net25", "efablation"}
	for _, id := range want {
		if _, ok := exps[id]; !ok {
			t.Errorf("missing experiment %q", id)
		}
	}
	ids := ExperimentIDs()
	if len(ids) != len(exps) {
		t.Fatal("ExperimentIDs incomplete")
	}
}

func TestTable1Experiment(t *testing.T) {
	tables, err := Experiments()["table1"].Run(fastSweep())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatal("table1 should produce one table")
	}
	if len(tables[0].Rows) < 18 {
		t.Fatalf("Table I has %d rows, want >= 18", len(tables[0].Rows))
	}
	var buf bytes.Buffer
	tables[0].Print(&buf)
	for _, name := range []string{"qsgd", "topk", "powersgd", "sketchml"} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("Table I missing %s", name)
		}
	}
}

func TestCodecLatency(t *testing.T) {
	durs, err := CodecLatency(MethodSpec{Label: "Topk", Name: "topk", Opts: grace.Options{Ratio: 0.01}}, 1<<14, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(durs) != 3 {
		t.Fatalf("want 3 reps, got %d", len(durs))
	}
	for _, d := range durs {
		if d <= 0 {
			t.Fatal("non-positive latency")
		}
	}
}

func TestCodecLatencyAllMethods(t *testing.T) {
	for _, spec := range Suite() {
		if spec.Name == "none" {
			continue
		}
		if _, err := CodecLatency(spec, 1<<12, 1, 1); err != nil {
			t.Errorf("%s: %v", spec.Label, err)
		}
	}
}

func TestSweepExperimentSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep experiment is slow")
	}
	tables, err := runSweep("ncf", "Figure 6d", fastSweep())
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	if len(tab.Rows) != len(Suite()) {
		t.Fatalf("sweep has %d rows, want %d", len(tab.Rows), len(Suite()))
	}
	// Baseline row must have relative throughput and volume exactly 1.
	if tab.Rows[0][2] != "1.0000" || tab.Rows[0][3] != "1.0000" {
		t.Fatalf("baseline normalization wrong: %v", tab.Rows[0])
	}
}
