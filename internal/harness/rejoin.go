package harness

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/ckpt"
	"repro/internal/grace"
	"repro/internal/telemetry"
)

// RejoinResult reports one supervised live-rejoin experiment: unlike the
// full-restart path (RunRecovery), the healthy ranks never leave their
// original RunWorker call — they reform the group at the next generation and
// roll back in place while the supervisor respawns only the dead rank.
type RejoinResult struct {
	// ResumeStep is the step the heal rolled the group back to.
	ResumeStep int64
	// Generation is the group generation after the heal.
	Generation uint64
	// Launches counts RunWorker invocations per rank during the faulted run.
	// A correct rejoin is 1 for every healthy rank and 2 for the victim.
	Launches []int
	// Heals counts OnHeal events across ranks (one per participating rank).
	Heals int
	// Reforms is the telemetry group-reform counter delta over the faulted
	// run (counters are always live).
	Reforms int64
	// TransferBytes is the rejoin state-transfer counter delta; it only moves
	// when a rank lost its checkpoints and adopted a donor snapshot.
	TransferBytes int64
	// Downtime is the wall-clock span from the kill to the last rank
	// completing its heal — the rejoin path's recovery cost, for comparison
	// against RecoveryResult.Downtime.
	Downtime time.Duration
	// Match reports bitwise equality of the healed and reference finals.
	Match  bool
	Detail string
	// Reference and Healed are the per-rank final snapshots.
	Reference, Healed []*grace.Snapshot
}

// RunRejoin executes the supervised live-rejoin scenario described by cfg:
// an uninterrupted reference run first, then a run where KillRank dies right
// after KillStep and is respawned into the *same* collective group — the
// survivors heal via generation reform plus rollback-to-common-step instead
// of restarting. The final weights must match the reference bit for bit; the
// healthy ranks' RunWorker calls must survive the whole experiment.
func RunRejoin(cfg RecoveryConfig) (*RejoinResult, error) {
	n := cfg.Train.Workers
	if cfg.Train.Checkpoint != nil || cfg.Train.OnStep != nil || cfg.Train.Rejoin != nil {
		return nil, fmt.Errorf("harness: rejoin owns Checkpoint, OnStep, and Rejoin")
	}
	if cfg.Dir == "" || cfg.Every <= 0 {
		return nil, fmt.Errorf("harness: rejoin needs Dir and Every")
	}
	if cfg.KillRank < 0 || cfg.KillRank >= n {
		return nil, fmt.Errorf("harness: kill rank %d out of [0,%d)", cfg.KillRank, n)
	}
	if cfg.KillStep <= 0 {
		return nil, fmt.Errorf("harness: kill step must be positive")
	}
	switch cfg.Transport {
	case "", TransportHub, TransportTCP:
	default:
		return nil, fmt.Errorf("harness: unknown transport %q", cfg.Transport)
	}

	// Uninterrupted reference on the same transport.
	refFinals, refErrs, err := runRecoveryPhase(cfg, phaseOpts{})
	if err != nil {
		return nil, err
	}
	for rank, err := range refErrs {
		if err != nil {
			return nil, fmt.Errorf("harness: reference rank %d: %w", rank, err)
		}
	}
	res := &RejoinResult{Reference: refFinals, Launches: make([]int, n)}

	reforms0 := telemetry.Default.Value(telemetry.CtrGroupReforms)
	transfer0 := telemetry.Default.Value(telemetry.CtrRejoinTransferBytes)
	if err := runRejoinPhase(cfg, res); err != nil {
		return nil, err
	}
	res.Reforms = telemetry.Default.Value(telemetry.CtrGroupReforms) - reforms0
	res.TransferBytes = telemetry.Default.Value(telemetry.CtrRejoinTransferBytes) - transfer0
	res.Match, res.Detail = snapshotsBitwiseEqual(res.Healed, refFinals)
	return res, nil
}

// runRejoinPhase runs the faulted attempt: all ranks live in one collective
// group with the self-healing trainer path enabled; the victim crashes after
// KillStep, the supervisor delivers the liveness verdict and respawns only
// that rank with SyncOnStart.
func runRejoinPhase(cfg RecoveryConfig, res *RejoinResult) error {
	n := cfg.Train.Workers
	finals := make([]*grace.Snapshot, n)
	errs := make([]error, n)

	var mu sync.Mutex
	var killT, lastHealT time.Time
	healGen := uint64(0)
	healStep := int64(-1)
	heals := 0

	sc, err := newFaultScaffold(&cfg, scaffoldReform)
	if err != nil {
		return err
	}

	// launch starts one rank's RunWorker. The victim's first incarnation
	// kills itself after KillStep; its second (respawn=true) syncs into the
	// healed group on start. Healthy ranks are launched exactly once.
	launch := func(rank int, respawn bool) error {
		mu.Lock()
		res.Launches[rank]++
		mu.Unlock()
		coll, die, err := sc.collFor(rank)
		if err != nil {
			return err
		}
		if c, ok := coll.(io.Closer); ok {
			defer c.Close()
		}
		tc := cfg.Train
		d, err := ckpt.OpenDir(cfg.Dir, rank)
		if err != nil {
			return err
		}
		tc.Checkpoint = &grace.CheckpointConfig{
			Every: cfg.Every,
			Final: true,
			Save: func(s *grace.Snapshot) error {
				finals[rank] = s
				return d.SaveStep(s)
			},
		}
		rj := d.RejoinConfig()
		rj.SyncOnStart = respawn
		rj.OnHeal = func(gen uint64, step int64) {
			mu.Lock()
			heals++
			// Max, not last: a respawned rank that joined the already-healed
			// group without driving a reform itself reports generation 0.
			if gen > healGen {
				healGen = gen
			}
			healStep = step
			lastHealT = time.Now()
			mu.Unlock()
		}
		tc.Rejoin = rj
		if !respawn && rank == cfg.KillRank {
			tc.OnStep = func(_ int, step int64) error {
				if step == cfg.KillStep {
					mu.Lock()
					killT = time.Now()
					mu.Unlock()
					// Sever this rank's presence the way a process death
					// would (TCP: dead sockets / frozen hang; hub: the
					// supervisor-delivered liveness verdict), then stop.
					die()
					return ErrSimulatedCrash
				}
				return nil
			}
		}
		_, err = grace.RunWorker(tc, rank, coll, simnetClusterFor(cfg.Train))
		return err
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		died := make(chan struct{})
		var wg sync.WaitGroup
		for rank := 0; rank < n; rank++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				err := launch(rank, false)
				if rank == cfg.KillRank {
					if !errors.Is(err, ErrSimulatedCrash) {
						errs[rank] = fmt.Errorf("victim exited with %v, want the simulated crash", err)
					}
					close(died)
					return
				}
				errs[rank] = err
			}(rank)
		}
		// Supervisor: when the victim is down, respawn only that rank into
		// the healing group. The healthy ranks' goroutines — and their
		// RunWorker calls — are untouched.
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-died
			mu.Lock()
			failed := errs[cfg.KillRank] != nil
			mu.Unlock()
			if failed {
				return // victim died for the wrong reason; don't respawn
			}
			err := launch(cfg.KillRank, true)
			mu.Lock()
			errs[cfg.KillRank] = err
			mu.Unlock()
		}()
		wg.Wait()
	}()

	timeout := cfg.watchdog()
	select {
	case <-done:
	case <-time.After(timeout):
		sc.teardown()
		<-done
		return fmt.Errorf("harness: rejoin phase watchdog fired after %v", timeout)
	}
	for rank, err := range errs {
		if err != nil {
			return fmt.Errorf("harness: rejoin rank %d: %w", rank, err)
		}
	}
	res.Healed = finals
	res.Heals = heals
	res.Generation = healGen
	res.ResumeStep = healStep
	if !killT.IsZero() && lastHealT.After(killT) {
		res.Downtime = lastHealT.Sub(killT)
	}
	return nil
}
