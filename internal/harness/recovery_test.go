package harness

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/comm"
	"repro/internal/grace"
	"repro/internal/simnet"
)

// TestMain doubles as the entry point for the SIGKILL recovery test's worker
// processes: the test re-execs its own binary with GRACE_RECOVERY_WORKER set,
// so each rank of the real TCP ring is a genuine OS process that can be
// killed dead.
func TestMain(m *testing.M) {
	if os.Getenv("GRACE_RECOVERY_WORKER") != "" {
		os.Exit(recoveryWorkerMain())
	}
	os.Exit(m.Run())
}

// runRecoveryCase executes the supervised kill/restart scenario on one
// transport and requires bitwise-identical finals plus properly typed
// failure evidence from the crash phase.
func runRecoveryCase(t *testing.T, transport, method string, mem bool) {
	t.Helper()
	res, err := RunRecovery(DefaultRecovery(transport, method, mem, t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	if res.ResumeStep != 3 {
		t.Fatalf("resumed from step %d, want 3", res.ResumeStep)
	}
	if !res.Match {
		t.Fatalf("recovered run diverged: %s", res.Detail)
	}
	if !errors.Is(res.KillErrs[1], ErrSimulatedCrash) {
		t.Fatalf("victim error = %v", res.KillErrs[1])
	}
	for _, rank := range []int{0, 2} {
		var ce *comm.Error
		if !errors.As(res.KillErrs[rank], &ce) {
			t.Fatalf("survivor rank %d error is untyped: %v", rank, res.KillErrs[rank])
		}
		if transport == TransportTCP && !errors.Is(res.KillErrs[rank], comm.ErrPeerDead) {
			t.Fatalf("survivor rank %d error = %v, want comm.ErrPeerDead from the liveness layer",
				rank, res.KillErrs[rank])
		}
	}
}

func TestRecoveryBitwiseHub(t *testing.T) {
	for _, tc := range []struct {
		method string
		mem    bool
	}{
		{"topk", true}, // stateless codec + framework EF memory
		{"dgc", false}, // codec-internal EF state
	} {
		t.Run(tc.method, func(t *testing.T) {
			runRecoveryCase(t, TransportHub, tc.method, tc.mem)
		})
	}
}

func TestRecoveryBitwiseTCP(t *testing.T) {
	for _, tc := range []struct {
		method string
		mem    bool
	}{
		{"topk", true},
		{"dgc", false},
	} {
		t.Run(tc.method, func(t *testing.T) {
			runRecoveryCase(t, TransportTCP, tc.method, tc.mem)
		})
	}
}

// TestRecoveryBitwiseAutotune runs the supervised kill/restart scenario with
// the workers in autotuning mode on both transports: the rollback lands
// mid-warmup, and the finals must agree with the uninterrupted reference on
// params AND policy state bit for bit (snapshotsBitwiseEqual compares both).
func TestRecoveryBitwiseAutotune(t *testing.T) {
	for _, transport := range []string{TransportHub, TransportTCP} {
		t.Run(transport, func(t *testing.T) {
			res, err := RunRecovery(AutotuneRecovery(transport, t.TempDir()))
			if err != nil {
				t.Fatal(err)
			}
			if res.ResumeStep != 3 {
				t.Fatalf("resumed from step %d, want 3", res.ResumeStep)
			}
			if !res.Match {
				t.Fatalf("recovered autotune run diverged: %s", res.Detail)
			}
			for rank, s := range res.Recovered {
				if s.Tuner == nil {
					t.Fatalf("rank %d final snapshot carries no policy state", rank)
				}
				if s.Tuner.Switches == 0 {
					t.Fatalf("rank %d policy recorded no switches over the run", rank)
				}
			}
		})
	}
}

// recoveryWorkerMain is one rank of the SIGKILL scenario: a real TCP-ring
// worker checkpointing to disk, optionally resuming, optionally slowed down
// so the parent can time its kill.
func recoveryWorkerMain() int {
	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	rank, err := strconv.Atoi(os.Getenv("GRACE_RANK"))
	if err != nil {
		return fail(fmt.Errorf("bad GRACE_RANK: %w", err))
	}
	addrs := strings.Split(os.Getenv("GRACE_ADDRS"), ",")
	dir := os.Getenv("GRACE_DIR")
	resumeStep, err := strconv.ParseInt(os.Getenv("GRACE_RESUME"), 10, 64)
	if err != nil {
		return fail(fmt.Errorf("bad GRACE_RESUME: %w", err))
	}
	delayMS, _ := strconv.Atoi(os.Getenv("GRACE_STEP_DELAY_MS"))

	cfg := DefaultRecovery(TransportTCP, "topk", true, dir).Train
	if os.Getenv("GRACE_MODE") == "autotune" {
		cfg = AutotuneRecovery(TransportTCP, dir).Train
	}
	rcfg := comm.RingConfig{
		Rank: rank, Addrs: addrs,
		SetupTimeout: 20 * time.Second,
		OpTimeout:    30 * time.Second,
		Heartbeat:    25 * time.Millisecond,
	}
	// Rejoin mode uses the re-dialable ring so a peer's SIGKILL is healed by
	// generation reform instead of ending this process.
	selfHeal := os.Getenv("GRACE_REJOIN") != ""
	var ring comm.Collective
	if selfHeal {
		r, err := comm.DialRing(rcfg)
		if err != nil {
			return fail(err)
		}
		defer r.Close()
		ring = r
	} else {
		r, err := comm.DialTCPRingConfig(rcfg)
		if err != nil {
			return fail(err)
		}
		defer r.Close()
		ring = r
	}
	d, err := ckpt.OpenDir(dir, rank)
	if err != nil {
		return fail(err)
	}
	cfg.Checkpoint = &grace.CheckpointConfig{Every: 2, Final: true, Save: d.SaveStep}
	if resumeStep >= 0 {
		s, err := ckpt.Load(d.Path(resumeStep))
		if err != nil {
			return fail(err)
		}
		cfg.Checkpoint.Resume = s
	}
	if selfHeal {
		rj := d.RejoinConfig()
		rj.SyncOnStart = os.Getenv("GRACE_REJOIN_SYNC") != ""
		rj.OnHeal = func(gen uint64, step int64) {
			fmt.Printf("rank %d: healed to step %d at generation %d\n", rank, step, gen)
		}
		cfg.Rejoin = rj
	}
	if delayMS > 0 {
		cfg.OnStep = func(int, int64) error {
			time.Sleep(time.Duration(delayMS) * time.Millisecond)
			return nil
		}
	}
	if _, err := grace.RunWorker(cfg, rank, ring, simnet.NewCluster(cfg.Net, cfg.Workers)); err != nil {
		return fail(err)
	}
	return 0
}

type workerProc struct {
	cmd *exec.Cmd
	out bytes.Buffer
}

func startWorkers(t *testing.T, exe, mode, dir string, addrs []string, resume int64, delayMS int, extraEnv ...string) []*workerProc {
	t.Helper()
	procs := make([]*workerProc, len(addrs))
	for rank := range addrs {
		procs[rank] = startWorker(t, exe, mode, dir, addrs, rank, resume, delayMS, extraEnv...)
	}
	return procs
}

// startWorker launches a single rank, so the rejoin scenario can respawn just
// the SIGKILLed one.
func startWorker(t *testing.T, exe, mode, dir string, addrs []string, rank int, resume int64, delayMS int, extraEnv ...string) *workerProc {
	t.Helper()
	p := &workerProc{cmd: exec.Command(exe)}
	p.cmd.Env = append(os.Environ(),
		"GRACE_RECOVERY_WORKER=1",
		"GRACE_MODE="+mode,
		"GRACE_RANK="+strconv.Itoa(rank),
		"GRACE_ADDRS="+strings.Join(addrs, ","),
		"GRACE_DIR="+dir,
		"GRACE_RESUME="+strconv.FormatInt(resume, 10),
		"GRACE_STEP_DELAY_MS="+strconv.Itoa(delayMS),
	)
	p.cmd.Env = append(p.cmd.Env, extraEnv...)
	p.cmd.Stdout = &p.out
	p.cmd.Stderr = &p.out
	if err := p.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return p
}

// runSIGKILLScenario is the end-to-end chaos flow shared by the fixed-method
// and autotune SIGKILL tests: three OS processes on a real
// heartbeat-enabled TCP ring, one SIGKILLed mid-run, all restarted from the
// newest common checkpoint, then every checkpoint step in compareSteps
// (worker cadence is 2) compared bitwise against an uninterrupted
// multi-process run — params and, in autotune mode, the policy trajectory.
func runSIGKILLScenario(t *testing.T, mode string, compareSteps []int64) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	const n = 3
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	refDir := root + "/ref"
	dir := root + "/run"

	// Kill every stray child if the test aborts early.
	var all []*workerProc
	defer func() {
		for _, p := range all {
			p.cmd.Process.Kill()
		}
	}()
	wait := func(procs []*workerProc, rank int) error {
		return procs[rank].cmd.Wait()
	}

	// Uninterrupted multi-process reference.
	addrs, err := freeLoopbackAddrs(n)
	if err != nil {
		t.Fatal(err)
	}
	ref := startWorkers(t, exe, mode, refDir, addrs, -1, 0)
	all = append(all, ref...)
	for rank := 0; rank < n; rank++ {
		if err := wait(ref, rank); err != nil {
			t.Fatalf("reference rank %d: %v\n%s", rank, err, &ref[rank].out)
		}
	}

	// Crash run: slowed steps so the SIGKILL lands mid-run. The parent waits
	// until the victim's step-4 checkpoint is durable, then kills it dead.
	if addrs, err = freeLoopbackAddrs(n); err != nil {
		t.Fatal(err)
	}
	const victim = 1
	procs := startWorkers(t, exe, mode, dir, addrs, -1, 200)
	all = append(all, procs...)
	victimDir, err := ckpt.OpenDir(dir, victim)
	if err != nil {
		t.Fatal(err)
	}
	killDeadline := time.Now().Add(60 * time.Second)
	for victimDir.LatestStep() < 4 {
		if time.Now().After(killDeadline) {
			t.Fatalf("victim never reached step 4; output:\n%s", &procs[victim].out)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := procs[victim].cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	if err := wait(procs, victim); err == nil {
		t.Fatal("victim exited cleanly despite SIGKILL")
	}
	for _, rank := range []int{0, 2} {
		if err := wait(procs, rank); err == nil {
			t.Fatalf("survivor rank %d completed despite the dead peer", rank)
		}
		if out := procs[rank].out.String(); !strings.Contains(out, "comm: rank") {
			t.Fatalf("survivor rank %d exited without a typed comm error:\n%s", rank, out)
		}
	}

	// Supervised restart from the newest step all ranks hold.
	common := ckpt.CommonStep(dir, n)
	if common < 2 {
		t.Fatalf("no usable common checkpoint (step %d)", common)
	}
	if addrs, err = freeLoopbackAddrs(n); err != nil {
		t.Fatal(err)
	}
	resumed := startWorkers(t, exe, mode, dir, addrs, common, 0)
	all = append(all, resumed...)
	for rank := 0; rank < n; rank++ {
		if err := wait(resumed, rank); err != nil {
			t.Fatalf("resumed rank %d: %v\n%s", rank, err, &resumed[rank].out)
		}
	}

	// Every requested checkpoint step must match the reference bit for bit
	// (steps before the rollback come from the crash run's own trajectory,
	// steps after it from the resumed one — all must agree).
	for _, step := range compareSteps {
		got := make([]*grace.Snapshot, n)
		want := make([]*grace.Snapshot, n)
		for rank := 0; rank < n; rank++ {
			gd, err := ckpt.OpenDir(dir, rank)
			if err != nil {
				t.Fatal(err)
			}
			wd, err := ckpt.OpenDir(refDir, rank)
			if err != nil {
				t.Fatal(err)
			}
			if got[rank], err = ckpt.Load(gd.Path(step)); err != nil {
				t.Fatalf("recovered rank %d step %d: %v", rank, step, err)
			}
			if want[rank], err = ckpt.Load(wd.Path(step)); err != nil {
				t.Fatalf("reference rank %d step %d: %v", rank, step, err)
			}
			if mode == "autotune" && want[rank].Tuner == nil {
				t.Fatalf("reference rank %d step %d snapshot carries no policy state", rank, step)
			}
		}
		if ok, detail := snapshotsBitwiseEqual(got, want); !ok {
			t.Fatalf("SIGKILL recovery diverged at step %d: %s", step, detail)
		}
	}
}

// TestRecoverySIGKILLTCP: the fixed-method scenario, comparing the step-8
// finals.
func TestRecoverySIGKILLTCP(t *testing.T) {
	runSIGKILLScenario(t, "", []int64{8})
}

// TestRejoinSIGKILLTCP: the live-rejoin path under a genuine SIGKILL. Three
// OS processes on a real heartbeat-enabled TCP ring run in self-healing mode;
// rank 1 is killed dead mid-run and ONLY rank 1 is relaunched (with
// GRACE_REJOIN_SYNC, the -rejoin-sync path). The survivors' processes are
// never restarted — the same PIDs that joined the ring at generation 0 exit
// cleanly after healing — and the step-8 finals must match an uninterrupted
// multi-process reference bit for bit.
func TestRejoinSIGKILLTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	const n = 3
	const victim = 1
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	refDir := root + "/ref"
	dir := root + "/run"

	var all []*workerProc
	defer func() {
		for _, p := range all {
			p.cmd.Process.Kill()
		}
	}()

	// Uninterrupted multi-process reference, also in self-healing mode so the
	// code path under comparison is identical.
	addrs, err := freeLoopbackAddrs(n)
	if err != nil {
		t.Fatal(err)
	}
	ref := startWorkers(t, exe, "", refDir, addrs, -1, 0, "GRACE_REJOIN=1")
	all = append(all, ref...)
	for rank := 0; rank < n; rank++ {
		if err := ref[rank].cmd.Wait(); err != nil {
			t.Fatalf("reference rank %d: %v\n%s", rank, err, &ref[rank].out)
		}
	}

	// Self-healing run: slowed steps so the SIGKILL lands mid-run.
	if addrs, err = freeLoopbackAddrs(n); err != nil {
		t.Fatal(err)
	}
	procs := startWorkers(t, exe, "", dir, addrs, -1, 200, "GRACE_REJOIN=1")
	all = append(all, procs...)
	victimDir, err := ckpt.OpenDir(dir, victim)
	if err != nil {
		t.Fatal(err)
	}
	killDeadline := time.Now().Add(60 * time.Second)
	for victimDir.LatestStep() < 4 {
		if time.Now().After(killDeadline) {
			t.Fatalf("victim never reached step 4; output:\n%s", &procs[victim].out)
		}
		time.Sleep(2 * time.Millisecond)
	}
	survivorPIDs := [2]int{procs[0].cmd.Process.Pid, procs[2].cmd.Process.Pid}
	if err := procs[victim].cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	if err := procs[victim].cmd.Wait(); err == nil {
		t.Fatal("victim exited cleanly despite SIGKILL")
	}

	// Respawn ONLY the victim, syncing into the live group. The survivors are
	// parked at the reform rendezvous; their processes are untouched.
	respawn := startWorker(t, exe, "", dir, addrs, victim, -1, 0,
		"GRACE_REJOIN=1", "GRACE_REJOIN_SYNC=1")
	all = append(all, respawn)
	if err := respawn.cmd.Wait(); err != nil {
		t.Fatalf("respawned victim: %v\n%s", err, &respawn.out)
	}
	for _, rank := range []int{0, 2} {
		if err := procs[rank].cmd.Wait(); err != nil {
			t.Fatalf("survivor rank %d: %v\n%s", rank, err, &procs[rank].out)
		}
		out := procs[rank].out.String()
		if !strings.Contains(out, "healed to step 4 at generation 1") {
			t.Fatalf("survivor rank %d never reported the heal:\n%s", rank, out)
		}
	}
	// The healthy ranks' processes were started exactly once; assert the PIDs
	// that finished are the ones that joined at generation 0.
	if procs[0].cmd.Process.Pid != survivorPIDs[0] || procs[2].cmd.Process.Pid != survivorPIDs[1] {
		t.Fatal("survivor process identity changed across the heal")
	}

	got := make([]*grace.Snapshot, n)
	want := make([]*grace.Snapshot, n)
	for rank := 0; rank < n; rank++ {
		gd, err := ckpt.OpenDir(dir, rank)
		if err != nil {
			t.Fatal(err)
		}
		wd, err := ckpt.OpenDir(refDir, rank)
		if err != nil {
			t.Fatal(err)
		}
		if got[rank], err = ckpt.Load(gd.Path(8)); err != nil {
			t.Fatalf("healed rank %d step 8: %v", rank, err)
		}
		if want[rank], err = ckpt.Load(wd.Path(8)); err != nil {
			t.Fatalf("reference rank %d step 8: %v", rank, err)
		}
	}
	if ok, detail := snapshotsBitwiseEqual(got, want); !ok {
		t.Fatalf("SIGKILL rejoin diverged: %s", detail)
	}
}

// TestRecoverySIGKILLAutotuneTCP: SIGKILL mid-run with autotune on. The
// whole retained checkpoint trajectory (steps 4, 6, 8 — cadence 2 with
// ckpt.DefaultKeep = 3) is compared, so the resumed policy must re-derive
// the exact decision sequence — candidate assignments, switch counts,
// observed volumes — the reference run took, alongside bitwise-identical
// params.
func TestRecoverySIGKILLAutotuneTCP(t *testing.T) {
	runSIGKILLScenario(t, "autotune", []int64{4, 6, 8})
}
