package harness

import (
	"testing"

	_ "repro/internal/compress/all"
)

// TestAutotuneBeatsStatics is the battery's acceptance check: on the
// small-layer model at the communication-bound system point, the tuned run's
// steady-state modeled step time must not exceed the best static candidate's.
// Every quantity in the comparison is deterministic (modeled comm + fixed
// compute), so this is a hard inequality, not a statistical one.
func TestAutotuneBeatsStatics(t *testing.T) {
	if testing.Short() {
		t.Skip("trains 5 full runs")
	}
	b, err := BenchmarkByName("smalllayer")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunAutotuneBench(b, DefaultAutotuneSweep())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		t.Logf("%-12s step=%v switches=%d policy=%v", r.Label, r.StepTime, r.Switches, r.FinalPolicy)
	}
	if res.Tuned.StepTime > res.BestStatic.StepTime {
		t.Fatalf("tuned steady-state step %v exceeds best static %q at %v",
			res.Tuned.StepTime, res.BestStatic.Label, res.BestStatic.StepTime)
	}
	if res.Tuned.Switches == 0 {
		t.Fatal("tuned run recorded no method switches (warmup alone should switch)")
	}
	if len(res.Tuned.FinalPolicy) == 0 {
		t.Fatal("tuned run reported no final policy")
	}
	a := AutotuneArtifact(res)
	if a.NsPerOp <= 0 || a.Extra["best_static_step_ns"] <= 0 {
		t.Fatalf("artifact not populated: %+v", a)
	}
}
