package harness

import (
	"testing"
)

// runRejoinCase executes the supervised live-rejoin scenario on one transport
// and requires the acceptance contract: bitwise-identical finals, healthy
// ranks keeping their one and only RunWorker call, the group reconvening at
// generation 1, and the rollback landing on the step-3 checkpoint (kill at
// step 5, cadence 3).
func runRejoinCase(t *testing.T, cfg RecoveryConfig) {
	t.Helper()
	res, err := RunRejoin(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Match {
		t.Fatalf("healed run diverged from the reference: %s", res.Detail)
	}
	n := cfg.Train.Workers
	for rank, launches := range res.Launches {
		want := 1
		if rank == cfg.KillRank {
			want = 2 // first incarnation dies, the supervisor respawns one
		}
		if launches != want {
			t.Fatalf("rank %d launched %d times, want %d (healthy ranks must keep their process)",
				rank, launches, want)
		}
	}
	if res.ResumeStep != 3 {
		t.Fatalf("healed to step %d, want 3", res.ResumeStep)
	}
	if res.Generation != 1 {
		t.Fatalf("healed at generation %d, want 1", res.Generation)
	}
	if res.Heals != n {
		t.Fatalf("%d heal events, want one per rank (%d)", res.Heals, n)
	}
	if res.Reforms < 1 {
		t.Fatalf("group-reform counter did not move (delta %d)", res.Reforms)
	}
	if res.Downtime <= 0 {
		t.Fatalf("downtime %v not measured", res.Downtime)
	}
	// Nobody lost a checkpoint directory in this scenario, so the heal must
	// have used own-checkpoint rollback, not a donor transfer.
	if res.TransferBytes != 0 {
		t.Fatalf("unexpected donor transfer of %d bytes; every rank held its own checkpoints",
			res.TransferBytes)
	}
}

func TestRejoinBitwiseHub(t *testing.T) {
	for _, tc := range []struct {
		method string
		mem    bool
	}{
		{"topk", true}, // stateless codec + framework EF memory
		{"dgc", false}, // codec-internal EF state
	} {
		t.Run(tc.method, func(t *testing.T) {
			runRejoinCase(t, DefaultRecovery(TransportHub, tc.method, tc.mem, t.TempDir()))
		})
	}
}

func TestRejoinBitwiseTCP(t *testing.T) {
	for _, tc := range []struct {
		method string
		mem    bool
	}{
		{"topk", true},
		{"dgc", false},
	} {
		t.Run(tc.method, func(t *testing.T) {
			runRejoinCase(t, DefaultRecovery(TransportTCP, tc.method, tc.mem, t.TempDir()))
		})
	}
}

// TestRejoinBitwiseAutotune runs the live-rejoin scenario with the workers in
// autotuning mode on both transports: the heal rolls the policy state back
// with the params, and the healed finals must carry an identical policy
// trajectory to the uninterrupted reference.
func TestRejoinBitwiseAutotune(t *testing.T) {
	for _, transport := range []string{TransportHub, TransportTCP} {
		t.Run(transport, func(t *testing.T) {
			cfg := AutotuneRecovery(transport, t.TempDir())
			runRejoinCase(t, cfg)
		})
	}
}

// TestRejoinHangTCP: the victim freezes (hung sockets, heartbeats stop)
// instead of dying fast — the survivors must convict it via heartbeat loss
// and heal exactly the same way.
func TestRejoinHangTCP(t *testing.T) {
	cfg := DefaultRecovery(TransportTCP, "topk", true, t.TempDir())
	cfg.KillMode = "hang"
	runRejoinCase(t, cfg)
}

// TestRejoinValidation: the battery owns the trainer's Checkpoint/OnStep/
// Rejoin hooks and must reject configs that try to supply their own.
func TestRejoinValidation(t *testing.T) {
	cfg := DefaultRecovery(TransportHub, "topk", true, t.TempDir())
	cfg.Train.OnStep = func(int, int64) error { return nil }
	if _, err := RunRejoin(cfg); err == nil {
		t.Fatal("config with a caller OnStep must be rejected")
	}
	cfg = DefaultRecovery(TransportHub, "topk", true, t.TempDir())
	cfg.Every = 0
	if _, err := RunRejoin(cfg); err == nil {
		t.Fatal("config without a checkpoint cadence must be rejected")
	}
}
