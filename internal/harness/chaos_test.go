package harness

import (
	"errors"
	"testing"
	"time"

	"repro/internal/comm"
	_ "repro/internal/compress/all"
)

// TestDefaultChaosBattery runs the full default chaos sweep and requires
// every scenario verdict to pass: benign faults complete, fatal faults yield
// typed errors on every rank, and nothing hangs.
func TestDefaultChaosBattery(t *testing.T) {
	cfg := DefaultChaos(3, 7)
	cfg.Timeout = 20 * time.Second
	results := RunChaos(cfg)
	if len(results) != len(cfg.Scenarios) {
		t.Fatalf("got %d results for %d scenarios", len(results), len(cfg.Scenarios))
	}
	byName := map[string]ChaosResult{}
	for _, r := range results {
		byName[r.Scenario] = r
		if !r.Pass {
			t.Errorf("scenario %s failed: %s", r.Scenario, r.Detail)
		}
		if r.Hung {
			t.Errorf("scenario %s hung", r.Scenario)
		}
	}

	if r := byName["clean"]; r.Injected != 0 || r.Faults != 0 {
		t.Errorf("clean scenario injected %d faults, observed %d decode faults", r.Injected, r.Faults)
	}
	for _, name := range []string{"delay", "stall", "corrupt+fallback"} {
		if byName[name].Injected == 0 {
			t.Errorf("scenario %s injected nothing — plan never fired", name)
		}
	}
	drop := byName["drop"]
	if errs := drop.Errs; len(errs) == 3 {
		if !errors.Is(errs[1], comm.ErrInjected) {
			t.Errorf("drop victim error %v should wrap ErrInjected", errs[1])
		}
		for _, rank := range []int{0, 2} {
			if !errors.Is(errs[rank], comm.ErrAborted) {
				t.Errorf("drop peer rank %d error %v should wrap ErrAborted", rank, errs[rank])
			}
		}
	} else {
		t.Errorf("drop scenario has %d error slots, want 3", len(errs))
	}
	// The fallback scenario must account its recoveries consistently: every
	// group-wide fallback stems from at least one local fault observation.
	fb := byName["corrupt+fallback"]
	if fb.Fallbacks < fb.Faults/3 {
		t.Errorf("fallback accounting inconsistent: %d faults, %d fallbacks", fb.Faults, fb.Fallbacks)
	}
	// The retry scenarios are the transient-only plans: the same fatal fault
	// kinds as drop/reset, but the Resilient wrapper must absorb them —
	// injections observed, retries spent, every rank finishing with no error
	// and no supervisor intervention.
	for _, name := range []string{"drop+retry", "reset+retry"} {
		r := byName[name]
		if r.Injected == 0 {
			t.Errorf("scenario %s injected nothing — plan never fired", name)
		}
		if r.Retries == 0 {
			t.Errorf("scenario %s absorbed no retries despite %d injections", name, r.Injected)
		}
		for rank, err := range r.Errs {
			if err != nil {
				t.Errorf("scenario %s rank %d surfaced %v; retry should have absorbed it", name, rank, err)
			}
		}
	}
}

// TestAutotuneChaosBattery runs the chaos sweep with the engines in
// autotuning mode: benign faults must not disturb a tuned run, fatal faults
// must still produce typed errors everywhere, and the battery must exercise
// actual policy work (warmup probing guarantees switches on the clean
// scenario).
func TestAutotuneChaosBattery(t *testing.T) {
	cfg := AutotuneChaos(3, 7)
	cfg.Timeout = 20 * time.Second
	results := RunChaos(cfg)
	if len(results) != len(cfg.Scenarios) {
		t.Fatalf("got %d results for %d scenarios", len(results), len(cfg.Scenarios))
	}
	for _, r := range results {
		if !r.Pass {
			t.Errorf("scenario %s failed: %s", r.Scenario, r.Detail)
		}
		if r.Hung {
			t.Errorf("scenario %s hung", r.Scenario)
		}
	}
}

// TestChaosWatchdog: a scenario that would deadlock (stall forever via an
// unmatched drop expectation) is converted into a Hung verdict, not a stuck
// test. Simulated by a plan whose drop never aborts: we use a tiny timeout
// with a long stall instead.
func TestChaosWatchdog(t *testing.T) {
	cfg := DefaultChaos(3, 1)
	cfg.Steps = 2
	cfg.Timeout = 150 * time.Millisecond
	cfg.Scenarios = []ChaosScenario{{
		Name: "eternal-stall",
		Plan: comm.Plan{Faults: []comm.Fault{
			{Kind: comm.FaultDelay, Rank: 0, Delay: 3 * time.Second},
		}},
	}}
	start := time.Now()
	results := RunChaos(cfg)
	if !results[0].Hung {
		t.Fatalf("watchdog did not fire: %+v", results[0])
	}
	if results[0].Pass {
		t.Fatal("hung scenario must not pass")
	}
	// The abort lets workers unwind as soon as the injected sleep returns;
	// well before the full steps × delay serial schedule.
	if time.Since(start) > 10*time.Second {
		t.Fatal("watchdog abort did not reclaim the workers promptly")
	}
}
