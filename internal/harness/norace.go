//go:build !race

package harness

// raceTimeoutScale is 1 in native builds; see race.go for the -race variant.
const raceTimeoutScale = 1
