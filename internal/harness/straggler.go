package harness

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/grace"
	"repro/internal/telemetry/xrank"
)

// StragglerConfig describes one straggler-attribution battery run: a
// multi-rank in-process exchange loop with a per-op delay injected on one
// rank, the cross-rank observability plane enabled, and the merged trace's
// per-step skew rows checked for whether they attribute the slowness to the
// injected rank. The battery is the end-to-end proof of the xrank plane's
// core claim: rendezvous wait asymmetry alone — no cross-rank clock sync —
// identifies the straggler.
type StragglerConfig struct {
	Workers int
	Steps   int
	Tensors int
	// DelayRank is the rank carrying the injected pre-collective delay.
	DelayRank int
	// Delay is the injected per-op sleep; it must dominate the substrate's
	// natural jitter for the attribution to be meaningful.
	Delay time.Duration
	// AggregateEvery is the xrank piggyback cadence in steps.
	AggregateEvery int
	// Method/Opts select the compressor (an allreduce-strategy method keeps
	// the delayed op and the fault rule trivially aligned).
	Method string
	Opts   grace.Options
	Seed   uint64
	// ArtifactsDir, when non-empty, receives rank 0's merged trace + skew
	// artifacts (XRANK_trace.json, XRANK_skew.json) for gracestat.
	ArtifactsDir string
	Timeout      time.Duration
}

// DefaultStraggler is the stock battery: 4 ranks, one of them (rank 2)
// delayed 2ms before every allreduce, dense exchange so every step has a
// clean per-tensor op window.
func DefaultStraggler(workers int, seed uint64) StragglerConfig {
	if workers < 2 {
		workers = 4
	}
	return StragglerConfig{
		Workers:        workers,
		Steps:          40,
		Tensors:        6,
		DelayRank:      workers / 2,
		Delay:          2 * time.Millisecond,
		AggregateEvery: 10,
		Method:         "none",
		Seed:           seed,
	}
}

// StragglerResult is the battery verdict.
type StragglerResult struct {
	Pass bool
	// DelayedRank echoes the injected rank. SkewSteps is how many per-step
	// skew rows the merged trace yielded; Attributed is how many of them
	// named DelayedRank the straggler. Counts is the full per-rank straggler
	// tally over the rows.
	DelayedRank int
	SkewSteps   int
	Attributed  int
	Counts      []int64
	// MaxSkewNs is the largest slowest-vs-fastest wait spread observed in
	// one step; with an injected delay it should be on the order of
	// Delay × ops-per-step.
	MaxSkewNs int64
	Elapsed   time.Duration
	Errs      []error
	Detail    string
}

// RunStraggler runs the battery. It owns the process-global xrank recorder
// for its duration (reset on entry, disabled on exit), so it must not run
// concurrently with another xrank consumer.
func RunStraggler(cfg StragglerConfig) StragglerResult {
	res := StragglerResult{DelayedRank: cfg.DelayRank, Errs: make([]error, cfg.Workers)}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.AggregateEvery <= 0 {
		cfg.AggregateEvery = 10
	}
	infos := chaosInfos(cfg.Tensors)
	plan := comm.Plan{
		Seed: cfg.Seed,
		Faults: []comm.Fault{{
			Kind:  comm.FaultDelay,
			Rank:  cfg.DelayRank,
			Op:    comm.OpAllreduce,
			Delay: cfg.Delay,
		}},
	}

	rec := xrank.Default
	rec.Reset()
	rec.SetEnabled(true)
	defer rec.SetEnabled(false)

	hub := comm.NewHub(cfg.Workers)
	aggs := make([]*xrank.Aggregator, cfg.Workers)
	start := time.Now()
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for rank := 0; rank < cfg.Workers; rank++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				coll := comm.NewFaulty(hub.Worker(rank), plan)
				eng, err := grace.NewEngine(
					grace.WithCollective(coll),
					grace.WithParallelism(2),
					grace.WithCompressorFactory(func() (grace.Compressor, error) {
						return grace.New(cfg.Method, cfg.Opts)
					}),
				)
				if err != nil {
					res.Errs[rank] = err
					return
				}
				agg := xrank.NewAggregator(rec, rank, cfg.Workers)
				aggs[rank] = agg
				for step := 0; step < cfg.Steps; step++ {
					if _, _, err := eng.Step(chaosGrads(rank, step, infos), infos); err != nil {
						res.Errs[rank] = err
						return
					}
					// Same cadence position on every rank: the piggyback
					// allgather is part of the lockstep op sequence.
					if (step+1)%cfg.AggregateEvery == 0 {
						if err := agg.Exchange(coll); err != nil {
							res.Errs[rank] = err
							return
						}
					}
				}
			}(rank)
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(cfg.Timeout):
		hub.Abort(fmt.Errorf("straggler watchdog: battery exceeded %v", cfg.Timeout))
		<-done
		res.Detail = "hung"
		return res
	}
	res.Elapsed = time.Since(start)
	for _, err := range res.Errs {
		if err != nil {
			res.Detail = "rank error"
			return res
		}
	}

	rows := xrank.ComputeSkew(aggs[0].Merged(), cfg.Workers)
	res.SkewSteps = len(rows)
	res.Counts = xrank.StragglerCounts(rows, cfg.Workers)
	for _, row := range rows {
		if row.Straggler == cfg.DelayRank {
			res.Attributed++
		}
		if row.SkewNs > res.MaxSkewNs {
			res.MaxSkewNs = row.SkewNs
		}
	}
	if cfg.ArtifactsDir != "" {
		if err := aggs[0].WriteArtifacts(cfg.ArtifactsDir); err != nil {
			res.Detail = fmt.Sprintf("artifact write: %v", err)
			return res
		}
	}

	// Verdict: the merged trace must cover most of the run (the last cadence
	// tick flushes every full window), and ≥90% of the covered steps must
	// finger the delayed rank.
	minRows := cfg.Steps / 2
	if res.SkewSteps < minRows {
		res.Detail = fmt.Sprintf("only %d skew rows for %d steps", res.SkewSteps, cfg.Steps)
		return res
	}
	if res.Attributed*10 < res.SkewSteps*9 {
		res.Detail = fmt.Sprintf("rank %d attributed in %d/%d steps (<90%%), counts=%v",
			cfg.DelayRank, res.Attributed, res.SkewSteps, res.Counts)
		return res
	}
	res.Pass = true
	res.Detail = fmt.Sprintf("rank %d attributed in %d/%d steps, max skew %v",
		cfg.DelayRank, res.Attributed, res.SkewSteps, time.Duration(res.MaxSkewNs))
	return res
}
