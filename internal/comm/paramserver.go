package comm

import (
	"fmt"
	"sync"
)

// PSHub is a parameter-server-style collective group (§IV-A of the paper:
// "a parameter server provides a gradient aggregation function equivalent to
// Allreduce"). Workers push payloads to a central server goroutine-safe
// state; the server aggregates and every worker pulls the result. Unlike the
// peer hub, per-op traffic is asymmetric: workers each send one payload and
// receive one aggregate, while the server handles n of each — the topology
// whose incast bottleneck motivated ring allreduce in the first place.
//
// PSHub implements the same Collective contract as Hub so the GRACE trainer
// and pipeline run unchanged on either topology.
type PSHub struct {
	n   int
	mu  sync.Mutex
	cur *psRound
}

type psRound struct {
	slots   [][]byte
	reduced []float32
	count   int
	done    chan struct{}
}

// NewPSHub creates a parameter-server group for n workers.
func NewPSHub(n int) *PSHub {
	if n <= 0 {
		panic("comm: ps hub size must be positive")
	}
	return &PSHub{n: n, cur: newPSRound(n)}
}

func newPSRound(n int) *psRound {
	return &psRound{slots: make([][]byte, n), done: make(chan struct{})}
}

// Worker returns the handle for one rank.
func (h *PSHub) Worker(rank int) *PSWorker {
	if rank < 0 || rank >= h.n {
		panic(fmt.Sprintf("comm: rank %d out of [0,%d)", rank, h.n))
	}
	return &PSWorker{hub: h, rank: rank}
}

// push deposits a payload; the last depositor (acting as the server's
// aggregation step) optionally sums float32 payloads before waking everyone.
func (h *PSHub) push(rank int, payload []byte, reduce bool) *psRound {
	h.mu.Lock()
	r := h.cur
	r.slots[rank] = payload
	r.count++
	if r.count == h.n {
		if reduce {
			r.reduced = sumF32Payloads(r.slots)
		}
		h.cur = newPSRound(h.n)
		close(r.done)
	}
	h.mu.Unlock()
	<-r.done
	return r
}

func sumF32Payloads(slots [][]byte) []float32 {
	if len(slots) == 0 || len(slots[0]) == 0 {
		return nil
	}
	out := bytesToF32(slots[0])
	for _, b := range slots[1:] {
		other := bytesToF32(b)
		for i := range out {
			if i < len(other) {
				out[i] += other[i]
			}
		}
	}
	return out
}

// PSWorker is one worker's handle onto a PSHub.
type PSWorker struct {
	hub  *PSHub
	rank int
}

var _ Collective = (*PSWorker)(nil)

// Rank returns this worker's rank.
func (w *PSWorker) Rank() int { return w.rank }

// Size returns the group size.
func (w *PSWorker) Size() int { return w.hub.n }

// AllreduceF32 pushes the vector to the server, which sums once; every
// worker pulls the same aggregate.
func (w *PSWorker) AllreduceF32(x []float32) error {
	r := w.hub.push(w.rank, f32ToBytes(x), true)
	if len(r.reduced) != len(x) {
		return fmt.Errorf("comm: ps allreduce length mismatch: %d vs %d", len(r.reduced), len(x))
	}
	copy(x, r.reduced)
	return nil
}

// AllgatherBytes pushes the payload and pulls everyone's (the server relays
// all payloads, which is what makes PS allgather expensive at scale).
func (w *PSWorker) AllgatherBytes(b []byte) ([][]byte, error) {
	r := w.hub.push(w.rank, b, false)
	out := make([][]byte, len(r.slots))
	copy(out, r.slots)
	return out, nil
}

// BroadcastBytes pushes only on the root and pulls the root's payload.
func (w *PSWorker) BroadcastBytes(b []byte, root int) ([]byte, error) {
	if root < 0 || root >= w.hub.n {
		return nil, fmt.Errorf("comm: broadcast root %d out of range", root)
	}
	var payload []byte
	if w.rank == root {
		payload = b
	}
	r := w.hub.push(w.rank, payload, false)
	return r.slots[root], nil
}

// Barrier blocks until all workers arrive at the server.
func (w *PSWorker) Barrier() error {
	w.hub.push(w.rank, nil, false)
	return nil
}
