package comm

import (
	"testing"
	"time"
)

func TestParsePlan(t *testing.T) {
	plan, err := ParsePlan("drop:rank=1,op=allgather,from=10,to=10; corrupt:prob=0.25 ;delay:delay=2ms", 9)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seed != 9 || len(plan.Faults) != 3 {
		t.Fatalf("plan = %+v, want seed 9 and 3 faults", plan)
	}
	want := []Fault{
		{Kind: FaultDrop, Rank: 1, Op: OpAllgather, FromStep: 10, ToStep: 10},
		{Kind: FaultCorrupt, Rank: AnyRank, Prob: 0.25},
		{Kind: FaultDelay, Rank: AnyRank, Delay: 2 * time.Millisecond},
	}
	for i, w := range want {
		if plan.Faults[i] != w {
			t.Errorf("fault %d = %+v, want %+v", i, plan.Faults[i], w)
		}
	}

	if plan, err := ParsePlan("", 1); err != nil || len(plan.Faults) != 0 {
		t.Fatalf("empty spec: plan %+v err %v, want empty plan", plan, err)
	}

	for _, bad := range []string{
		"explode",
		"drop:rank=x",
		"drop:prob=1.5",
		"drop:op=sideways",
		"drop:rank",
		"stall:delay=fast",
		"drop:magic=1",
	} {
		if _, err := ParsePlan(bad, 0); err == nil {
			t.Errorf("spec %q should be rejected", bad)
		}
	}
}
