package comm

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/fxrand"
)

// runGroup executes fn concurrently for each rank over an in-process hub.
func runGroup(t *testing.T, n int, fn func(w Collective) error) {
	t.Helper()
	hub := NewHub(n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = fn(hub.Worker(rank))
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

func TestSerialCollective(t *testing.T) {
	var c Collective = Serial{}
	if c.Rank() != 0 || c.Size() != 1 {
		t.Fatal("serial identity wrong")
	}
	x := []float32{1, 2}
	if err := c.AllreduceF32(x); err != nil || x[0] != 1 {
		t.Fatal("serial allreduce should be identity")
	}
	g, err := c.AllgatherBytes([]byte{5})
	if err != nil || len(g) != 1 || g[0][0] != 5 {
		t.Fatal("serial allgather wrong")
	}
}

func TestInProcAllreduce(t *testing.T) {
	const n = 4
	runGroup(t, n, func(w Collective) error {
		x := []float32{float32(w.Rank()), 1}
		if err := w.AllreduceF32(x); err != nil {
			return err
		}
		if x[0] != 0+1+2+3 || x[1] != n {
			return fmt.Errorf("allreduce got %v", x)
		}
		return nil
	})
}

func TestInProcAllreduceBitwiseIdentical(t *testing.T) {
	const n, dim = 5, 1000
	results := make([][]float32, n)
	var mu sync.Mutex
	runGroup(t, n, func(w Collective) error {
		r := fxrand.New(uint64(w.Rank()) + 1)
		x := make([]float32, dim)
		for i := range x {
			x[i] = r.NormFloat32()
		}
		if err := w.AllreduceF32(x); err != nil {
			return err
		}
		mu.Lock()
		results[w.Rank()] = x
		mu.Unlock()
		return nil
	})
	for rank := 1; rank < n; rank++ {
		for i := range results[0] {
			if results[rank][i] != results[0][i] {
				t.Fatalf("rank %d differs at %d", rank, i)
			}
		}
	}
}

func TestInProcAllgatherVariableLengths(t *testing.T) {
	const n = 3
	runGroup(t, n, func(w Collective) error {
		payload := make([]byte, w.Rank()+1)
		for i := range payload {
			payload[i] = byte(w.Rank())
		}
		all, err := w.AllgatherBytes(payload)
		if err != nil {
			return err
		}
		for rank := 0; rank < n; rank++ {
			if len(all[rank]) != rank+1 || (rank > 0 && all[rank][0] != byte(rank)) {
				return fmt.Errorf("gathered %v", all)
			}
		}
		return nil
	})
}

func TestInProcBroadcast(t *testing.T) {
	const n = 4
	runGroup(t, n, func(w Collective) error {
		var payload []byte
		if w.Rank() == 2 {
			payload = []byte("hello")
		}
		got, err := w.BroadcastBytes(payload, 2)
		if err != nil {
			return err
		}
		if string(got) != "hello" {
			return fmt.Errorf("broadcast got %q", got)
		}
		return nil
	})
}

func TestInProcManySequentialRounds(t *testing.T) {
	// Stress the round-object hand-off: fast workers must not corrupt slow
	// workers' reads across thousands of rounds.
	const n, rounds = 4, 2000
	runGroup(t, n, func(w Collective) error {
		for k := 0; k < rounds; k++ {
			x := []float32{float32(w.Rank() + k)}
			if err := w.AllreduceF32(x); err != nil {
				return err
			}
			want := float32(n*k + (n-1)*n/2)
			if x[0] != want {
				return fmt.Errorf("round %d: got %v want %v", k, x[0], want)
			}
		}
		return nil
	})
}

func TestInProcBarrier(t *testing.T) {
	const n = 8
	var counter sync.Map
	runGroup(t, n, func(w Collective) error {
		counter.Store(w.Rank(), true)
		if err := w.Barrier(); err != nil {
			return err
		}
		// After the barrier, every rank must have checked in.
		for r := 0; r < n; r++ {
			if _, ok := counter.Load(r); !ok {
				return fmt.Errorf("barrier passed before rank %d arrived", r)
			}
		}
		return nil
	})
}

func TestMeterAccounting(t *testing.T) {
	runGroup(t, 2, func(w Collective) error {
		m := NewMeter(w)
		x := make([]float32, 10)
		if err := m.AllreduceF32(x); err != nil {
			return err
		}
		if _, err := m.AllgatherBytes(make([]byte, 7)); err != nil {
			return err
		}
		if _, err := m.BroadcastBytes([]byte{1, 2, 3}, 0); err != nil {
			return err
		}
		want := int64(40 + 7)
		if m.Rank() == 0 {
			want += 3
		}
		if m.BytesSent() != want {
			return fmt.Errorf("rank %d metered %d bytes, want %d", m.Rank(), m.BytesSent(), want)
		}
		if m.Ops() != 3 {
			return fmt.Errorf("ops = %d", m.Ops())
		}
		m.Reset()
		if m.BytesSent() != 0 || m.Ops() != 0 {
			return fmt.Errorf("reset failed")
		}
		return nil
	})
}

// --- TCP ring ---

// freeAddrs reserves n distinct localhost ports.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

func runTCPGroup(t *testing.T, n int, fn func(w Collective) error) {
	t.Helper()
	addrs := freeAddrs(t, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			ring, err := DialTCPRing(rank, addrs, 5*time.Second)
			if err != nil {
				errs[rank] = err
				return
			}
			defer ring.Close()
			errs[rank] = fn(ring)
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

func TestTCPRingAllreduceMatchesSerialSum(t *testing.T) {
	const n, dim = 3, 1003 // non-divisible length exercises chunk edges
	inputs := make([][]float32, n)
	for rank := 0; rank < n; rank++ {
		r := fxrand.New(uint64(rank) + 10)
		inputs[rank] = make([]float32, dim)
		for i := range inputs[rank] {
			inputs[rank][i] = r.NormFloat32()
		}
	}
	want := make([]float32, dim)
	for _, in := range inputs {
		for i, v := range in {
			want[i] += v
		}
	}
	runTCPGroup(t, n, func(w Collective) error {
		x := append([]float32(nil), inputs[w.Rank()]...)
		if err := w.AllreduceF32(x); err != nil {
			return err
		}
		for i := range x {
			diff := x[i] - want[i]
			if diff > 1e-4 || diff < -1e-4 {
				return fmt.Errorf("element %d: got %v want %v", i, x[i], want[i])
			}
		}
		return nil
	})
}

func TestTCPRingAllgather(t *testing.T) {
	const n = 4
	runTCPGroup(t, n, func(w Collective) error {
		payload := []byte(fmt.Sprintf("rank-%d", w.Rank()))
		all, err := w.AllgatherBytes(payload)
		if err != nil {
			return err
		}
		for rank := 0; rank < n; rank++ {
			if string(all[rank]) != fmt.Sprintf("rank-%d", rank) {
				return fmt.Errorf("gathered %q at %d", all[rank], rank)
			}
		}
		return nil
	})
}

func TestTCPRingBroadcast(t *testing.T) {
	const n = 3
	runTCPGroup(t, n, func(w Collective) error {
		var payload []byte
		if w.Rank() == 1 {
			payload = []byte("xyz")
		}
		got, err := w.BroadcastBytes(payload, 1)
		if err != nil {
			return err
		}
		if string(got) != "xyz" {
			return fmt.Errorf("broadcast got %q", got)
		}
		return nil
	})
}

func TestTCPRingBarrierAndRepeatedOps(t *testing.T) {
	const n = 3
	runTCPGroup(t, n, func(w Collective) error {
		for k := 0; k < 20; k++ {
			if err := w.Barrier(); err != nil {
				return err
			}
			x := []float32{1}
			if err := w.AllreduceF32(x); err != nil {
				return err
			}
			if x[0] != n {
				return fmt.Errorf("round %d got %v", k, x[0])
			}
		}
		return nil
	})
}

func TestTCPRingLargePayload(t *testing.T) {
	const n = 2
	big := 1 << 18 // 256 KiB of float32s = 1 MiB frames, exceeds socket buffers
	runTCPGroup(t, n, func(w Collective) error {
		x := make([]float32, big)
		for i := range x {
			x[i] = 1
		}
		if err := w.AllreduceF32(x); err != nil {
			return err
		}
		if x[0] != n || x[big-1] != n {
			return fmt.Errorf("large allreduce wrong")
		}
		return nil
	})
}

func TestDialTCPRingRejectsBadConfig(t *testing.T) {
	if _, err := DialTCPRing(0, []string{"127.0.0.1:1"}, time.Second); err == nil {
		t.Fatal("expected error for 1-node ring")
	}
	if _, err := DialTCPRing(5, []string{"a", "b"}, time.Second); err == nil {
		t.Fatal("expected error for out-of-range rank")
	}
}

func TestHubWorkerBadRankPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHub(2).Worker(2)
}

// TestCollectiveLockstepConcurrency enforces the documented concurrency
// contract: distinct workers' handles are driven from separate goroutines
// that race through a long, mixed sequence of collectives — but each worker
// issues the identical op sequence in the same order, which must always
// produce correct, rank-agreed results. Run with -race this also proves the
// hub's round objects are published safely.
func TestCollectiveLockstepConcurrency(t *testing.T) {
	const (
		n      = 5
		rounds = 200
	)
	for _, sub := range []struct {
		name   string
		worker func(rank int) Collective
	}{
		{"hub", func() func(int) Collective {
			hub := NewHub(n)
			return func(rank int) Collective { return hub.Worker(rank) }
		}()},
		{"pshub", func() func(int) Collective {
			hub := NewPSHub(n)
			return func(rank int) Collective { return hub.Worker(rank) }
		}()},
	} {
		t.Run(sub.name, func(t *testing.T) {
			var wg sync.WaitGroup
			errs := make([]error, n)
			for rank := 0; rank < n; rank++ {
				wg.Add(1)
				go func(rank int) {
					defer wg.Done()
					w := sub.worker(rank)
					for r := 0; r < rounds; r++ {
						// Every worker runs this same deterministic mix.
						switch r % 4 {
						case 0:
							x := []float32{float32(w.Rank()), float32(r)}
							if err := w.AllreduceF32(x); err != nil {
								errs[rank] = err
								return
							}
							want := float32(n * (n - 1) / 2)
							if x[0] != want || x[1] != float32(r*n) {
								errs[rank] = fmt.Errorf("round %d allreduce got %v", r, x)
								return
							}
						case 1:
							// Variable-length payloads: rank i sends i+1 bytes.
							b := make([]byte, w.Rank()+1)
							for i := range b {
								b[i] = byte(r)
							}
							all, err := w.AllgatherBytes(b)
							if err != nil {
								errs[rank] = err
								return
							}
							for i, p := range all {
								if len(p) != i+1 || (len(p) > 0 && p[0] != byte(r)) {
									errs[rank] = fmt.Errorf("round %d allgather rank %d got %d bytes", r, i, len(p))
									return
								}
							}
						case 2:
							root := r % n
							var b []byte
							if w.Rank() == root {
								b = []byte{byte(r), byte(root)}
							}
							got, err := w.BroadcastBytes(b, root)
							if err != nil {
								errs[rank] = err
								return
							}
							if len(got) != 2 || got[0] != byte(r) || got[1] != byte(root) {
								errs[rank] = fmt.Errorf("round %d broadcast got %v", r, got)
								return
							}
						case 3:
							if err := w.Barrier(); err != nil {
								errs[rank] = err
								return
							}
						}
					}
				}(rank)
			}
			wg.Wait()
			for rank, err := range errs {
				if err != nil {
					t.Fatalf("rank %d: %v", rank, err)
				}
			}
		})
	}
}
