package comm

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// bareColl implements Collective by delegation without implementing
// ContextCollective, so the dispatch helpers must take their fallback path.
type bareColl struct{ inner Collective }

func (b *bareColl) Rank() int                          { return b.inner.Rank() }
func (b *bareColl) Size() int                          { return b.inner.Size() }
func (b *bareColl) AllreduceF32(x []float32) error     { return b.inner.AllreduceF32(x) }
func (b *bareColl) AllgatherBytes(p []byte) ([][]byte, error) {
	return b.inner.AllgatherBytes(p)
}
func (b *bareColl) BroadcastBytes(p []byte, root int) ([]byte, error) {
	return b.inner.BroadcastBytes(p, root)
}
func (b *bareColl) Barrier() error { return b.inner.Barrier() }

// TestDispatchFallback: the helpers must gate a non-context collective on
// ctx.Err — an expired context refuses to start the op — and pass a live
// context straight through.
func TestDispatchFallback(t *testing.T) {
	c := &bareColl{inner: Serial{}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := AllreduceF32(ctx, c, []float32{1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("allreduce on cancelled ctx: err = %v, want Canceled", err)
	}
	if _, err := AllgatherBytes(ctx, c, []byte{1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("allgather on cancelled ctx: err = %v, want Canceled", err)
	}
	if _, err := BroadcastBytes(ctx, c, []byte{1}, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("broadcast on cancelled ctx: err = %v, want Canceled", err)
	}
	if err := Barrier(ctx, c); !errors.Is(err, context.Canceled) {
		t.Fatalf("barrier on cancelled ctx: err = %v, want Canceled", err)
	}
	if err := AllreduceF32(context.Background(), c, []float32{1}); err != nil {
		t.Fatalf("allreduce on live ctx: %v", err)
	}
}

// TestSerialContext: Serial implements the extension natively.
func TestSerialContext(t *testing.T) {
	var c Collective = Serial{}
	if _, ok := c.(ContextCollective); !ok {
		t.Fatal("Serial should implement ContextCollective")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := AllreduceF32(ctx, c, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	out, err := AllgatherBytes(context.Background(), c, []byte{7})
	if err != nil || len(out) != 1 || out[0][0] != 7 {
		t.Fatalf("allgather = %v, %v", out, err)
	}
}

// TestWithTimeoutWrapsAndForwards: the wrapper implements the extension,
// forwards clean ops, and returns inner unchanged for d <= 0.
func TestWithTimeoutWrapsAndForwards(t *testing.T) {
	inner := Serial{}
	if got := WithTimeout(inner, 0); got != Collective(inner) {
		t.Fatal("WithTimeout(_, 0) should return inner unchanged")
	}
	c := WithTimeout(inner, time.Second)
	if _, ok := c.(ContextCollective); !ok {
		t.Fatal("WithTimeout result should implement ContextCollective")
	}
	if err := c.AllreduceF32([]float32{1}); err != nil {
		t.Fatalf("wrapped allreduce: %v", err)
	}
	if c.Rank() != 0 || c.Size() != 1 {
		t.Fatal("rank/size not forwarded")
	}
}

// dialRingPair builds a 2-rank ring for context tests; rank 1's handle is
// returned too so the test can keep it alive (and silent) while rank 0's op
// waits on it.
func dialRingPair(t *testing.T, opTO time.Duration) (r0, r1 *TCPRing) {
	t.Helper()
	addrs := freeAddrs(t, 2)
	rings := make([]*TCPRing, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for rank := 0; rank < 2; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			rings[rank], errs[rank] = DialTCPRingConfig(RingConfig{
				Rank: rank, Addrs: addrs,
				SetupTimeout: 5 * time.Second,
				OpTimeout:    opTO,
			})
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d dial: %v", rank, err)
		}
	}
	t.Cleanup(func() { rings[0].Close(); rings[1].Close() })
	return rings[0], rings[1]
}

// TestTCPRingCtxDeadline: a context deadline must bound an op even when the
// transport's own OpTimeout is far longer — the collective against a silent
// peer fails within the ctx budget, typed and wrapping DeadlineExceeded.
func TestTCPRingCtxDeadline(t *testing.T) {
	r0, _ := dialRingPair(t, time.Minute)
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := r0.AllreduceF32Ctx(ctx, make([]float32, 1024))
	if err == nil {
		t.Fatal("allreduce against a silent peer with a 150ms ctx deadline should fail")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	var ce *Error
	if !errors.As(err, &ce) || ce.Op != OpAllreduce {
		t.Fatalf("error %v lacks typed op coordinates", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("op took %v; the ctx deadline did not bound it", waited)
	}
}

// TestTCPRingCtxCancel: cancellation (no deadline at all) must unblock an op
// promptly and surface context.Canceled.
func TestTCPRingCtxCancel(t *testing.T) {
	r0, _ := dialRingPair(t, time.Minute)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := r0.AllgatherBytesCtx(ctx, []byte("payload"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("op took %v after a 100ms cancel", waited)
	}
}

// TestTCPRingCtxPreExpired: an already-dead context must refuse to start the
// op — the step counter must not advance, so the lockstep sequence is not
// consumed on a rank that never touched the wire.
func TestTCPRingCtxPreExpired(t *testing.T) {
	r0, _ := dialRingPair(t, time.Minute)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := r0.Step()
	if err := r0.BarrierCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if r0.Step() != before {
		t.Fatal("a refused op must not consume a lockstep step")
	}
}

// TestTCPRingWithTimeout: the WithTimeout wrapper bounds plain (non-ctx)
// calls on a real ring — the replacement for per-transport timeout knobs.
func TestTCPRingWithTimeout(t *testing.T) {
	r0, _ := dialRingPair(t, -1) // frame deadlines off: ctx is the only bound
	c := WithTimeout(r0, 150*time.Millisecond)
	start := time.Now()
	err := c.AllreduceF32(make([]float32, 64))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("op took %v; WithTimeout did not bound it", waited)
	}
}
