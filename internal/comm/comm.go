// Package comm provides the collective-communication substrate: the
// Collective interface (the role Horovod plays in the paper), an in-process
// hub implementation for goroutine workers, a real TCP ring implementation,
// and a byte-metering wrapper used for the paper's data-volume accounting.
package comm

import (
	"context"
	"sync/atomic"
)

// Collective exposes the three primitives GRACE's communication strategies
// need (§IV-B): Allreduce for summable tensors, Allgather for variable-length
// compressed payloads, and Broadcast. Implementations are per-worker handles;
// every method is a synchronization point that all workers must enter.
//
// Concurrency contract: the group advances in lockstep rounds, so every
// worker must issue the *identical sequence* of collective operations in the
// same order, and a single worker's handle must NOT be used from multiple
// goroutines concurrently — interleaved calls from one worker would enroll
// in rounds its peers attribute to different tensors. Distinct workers'
// handles are independent and are driven concurrently by design (each worker
// goroutine or process owns exactly one handle). Callers that want to
// overlap computation with communication across many tensors must serialize
// their collective calls in a deterministic order; grace.Engine does exactly
// that by funneling all calls through one driver goroutine in ascending
// tensor order while codec work proceeds on other goroutines. These
// guarantees are exercised by TestCollectiveLockstepConcurrency.
type Collective interface {
	// Rank is this worker's id in [0, Size).
	Rank() int
	// Size is the number of workers.
	Size() int
	// AllreduceF32 sums x elementwise across all workers, in place. All
	// workers must pass equal-length slices. The result is bitwise identical
	// on every worker.
	AllreduceF32(x []float32) error
	// AllgatherBytes distributes each worker's payload to all workers,
	// returned in rank order. Payload lengths may differ across workers.
	AllgatherBytes(b []byte) ([][]byte, error)
	// BroadcastBytes sends root's payload to all workers (the returned slice
	// on the root is its own payload).
	BroadcastBytes(b []byte, root int) ([]byte, error)
	// Barrier blocks until all workers arrive.
	Barrier() error
}

// Serial is the degenerate single-worker collective.
type Serial struct{}

var _ Collective = Serial{}

// Rank returns 0.
func (Serial) Rank() int { return 0 }

// Size returns 1.
func (Serial) Size() int { return 1 }

// AllreduceF32 is the identity for a single worker.
func (Serial) AllreduceF32(x []float32) error { return nil }

// AllgatherBytes returns the worker's own payload.
func (Serial) AllgatherBytes(b []byte) ([][]byte, error) { return [][]byte{b}, nil }

// BroadcastBytes returns the payload unchanged.
func (Serial) BroadcastBytes(b []byte, root int) ([]byte, error) { return b, nil }

// Barrier is a no-op.
func (Serial) Barrier() error { return nil }

// Meter wraps a Collective and counts the bytes this worker sends and
// receives. Sends are the paper's "data volume each worker generates" metric
// (§V): for AllreduceF32 the logical send volume is the full vector
// (4 bytes/element); for AllgatherBytes and BroadcastBytes it is the worker's
// own payload. Receives are the mirror image — the peer payload bytes this
// worker collects — which is what allgather-heavy sparsifiers need for an
// honest wire-cost figure: each worker sends one compressed payload but
// receives n-1 of them.
type Meter struct {
	inner Collective
	sent  atomic.Int64
	recv  atomic.Int64
	ops   atomic.Int64
}

var _ ContextCollective = (*Meter)(nil)

// NewMeter wraps inner with byte accounting.
func NewMeter(inner Collective) *Meter { return &Meter{inner: inner} }

// Rank forwards to the wrapped collective.
func (m *Meter) Rank() int { return m.inner.Rank() }

// Size forwards to the wrapped collective.
func (m *Meter) Size() int { return m.inner.Size() }

// Unwrap exposes the wrapped collective to capability probes (AsReformer).
func (m *Meter) Unwrap() Collective { return m.inner }

// AllreduceF32 forwards, accounting 4 bytes per element in each direction
// (the reduced vector comes back at full width).
func (m *Meter) AllreduceF32(x []float32) error {
	return m.AllreduceF32Ctx(context.Background(), x)
}

// AllreduceF32Ctx is AllreduceF32 with the context relayed to the wrapped
// collective (see the package-level dispatch helpers).
func (m *Meter) AllreduceF32Ctx(ctx context.Context, x []float32) error {
	m.sent.Add(int64(len(x) * 4))
	m.ops.Add(1)
	err := AllreduceF32(ctx, m.inner, x)
	if err == nil {
		m.recv.Add(int64(len(x) * 4))
	}
	return err
}

// AllgatherBytes forwards, accounting the local payload length as sent and
// the n-1 peer payloads as received.
func (m *Meter) AllgatherBytes(b []byte) ([][]byte, error) {
	return m.AllgatherBytesCtx(context.Background(), b)
}

// AllgatherBytesCtx is AllgatherBytes with the context relayed.
func (m *Meter) AllgatherBytesCtx(ctx context.Context, b []byte) ([][]byte, error) {
	m.sent.Add(int64(len(b)))
	m.ops.Add(1)
	all, err := AllgatherBytes(ctx, m.inner, b)
	if err == nil {
		for i, p := range all {
			if i != m.inner.Rank() {
				m.recv.Add(int64(len(p)))
			}
		}
	}
	return all, err
}

// BroadcastBytes forwards, accounting the payload as sent only on the root
// and as received everywhere else.
func (m *Meter) BroadcastBytes(b []byte, root int) ([]byte, error) {
	return m.BroadcastBytesCtx(context.Background(), b, root)
}

// BroadcastBytesCtx is BroadcastBytes with the context relayed.
func (m *Meter) BroadcastBytesCtx(ctx context.Context, b []byte, root int) ([]byte, error) {
	if m.inner.Rank() == root {
		m.sent.Add(int64(len(b)))
	}
	m.ops.Add(1)
	out, err := BroadcastBytes(ctx, m.inner, b, root)
	if err == nil && m.inner.Rank() != root {
		m.recv.Add(int64(len(out)))
	}
	return out, err
}

// Barrier forwards without accounting.
func (m *Meter) Barrier() error { return m.inner.Barrier() }

// BarrierCtx forwards with the context relayed, without accounting.
func (m *Meter) BarrierCtx(ctx context.Context) error { return Barrier(ctx, m.inner) }

// BytesSent reports the total payload bytes this worker has sent.
func (m *Meter) BytesSent() int64 { return m.sent.Load() }

// BytesRecv reports the total peer payload bytes this worker has received.
func (m *Meter) BytesRecv() int64 { return m.recv.Load() }

// Ops reports the number of collective operations performed.
func (m *Meter) Ops() int64 { return m.ops.Load() }

// Reset zeroes the counters.
func (m *Meter) Reset() {
	m.sent.Store(0)
	m.recv.Store(0)
	m.ops.Store(0)
}
