package comm

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fxrand"
	"repro/internal/telemetry"
	"repro/internal/telemetry/xrank"
)

// Transport hardening defaults. Production gradients are large but bounded;
// a frame header claiming more than MaxFrameBytes is treated as corruption —
// the body is rejected before any allocation happens.
const (
	// DefaultMaxFrameBytes bounds a single ring frame (256 MiB).
	DefaultMaxFrameBytes = 256 << 20
	// DefaultOpTimeout bounds each frame read/write on the wire. A peer that
	// stalls longer than this mid-collective surfaces a timeout error instead
	// of hanging the group forever.
	DefaultOpTimeout = 2 * time.Minute
	// DefaultHeartbeatMisses is how many consecutive silent heartbeat
	// intervals declare a neighbor dead.
	DefaultHeartbeatMisses = 3
)

// Connection preambles distinguish the data stream from the heartbeat side
// channel when RingConfig.Heartbeat is enabled; without heartbeats the wire
// format carries no preamble and stays byte-compatible with older rings.
//
// With heartbeats on, every dialed connection opens with a 9-byte generation
// handshake ([role][8-byte big-endian generation]) that the acceptor answers
// with a 9-byte reply ([hsAccept|hsReject][generation]). A rejection carries
// the higher of the two generations, and both sides adopt upward and retry,
// so a ring reforming after a member death converges on generation g+1 while
// every connection from the old incarnation is refused — a stale member can
// never splice itself into the new ring. Heartbeat pings then carry the
// generation in every record, so a generation mismatch that slips past setup
// is detected within one ping interval and the peer is rejected with
// ErrStaleGeneration.
const (
	preambleData      = 'G'
	preambleHeartbeat = 'H'
	// hbBye is sent on the heartbeat channel by a rank closing gracefully,
	// so neighbors still draining their final collective can tell an orderly
	// departure from a crash.
	hbBye = 'B'
	// hsAccept / hsReject open the acceptor's handshake reply.
	hsAccept = 'A'
	hsReject = 'R'
	// confirmMagic opens the post-setup ring confirmation token.
	confirmMagic = 'C'
	// hsProbe is an elastic liveness census probe: the payload field carries
	// the prober's generation, the reply ('A') the acceptor's current one.
	// Probes are answered during ring setup too — an overlapping setup phase
	// must not read as a death — and never affect the acceptor's state.
	hsProbe = 'E'
	// hsJoin is an elastic join request; the payload field carries the
	// joiner's original rank, not a generation. A member's elastic acceptor
	// answers with its generation and member list; plain ring setup rejects
	// it (the joiner retries until a member is listening).
	hsJoin = 'J'
	// handshakeLen is the wire size of handshake records, replies, ping
	// records, and confirmation tokens alike: one kind byte plus the
	// generation.
	handshakeLen = 9
)

// RingConfig tunes the hardened TCP ring transport beyond the required rank
// and address list. The zero value of every knob selects the documented
// default.
type RingConfig struct {
	// Rank is this worker's id; Addrs[i] is the listen address of rank i.
	Rank  int
	Addrs []string
	// SetupTimeout bounds the whole ring establishment (accept + dial),
	// default 30s.
	SetupTimeout time.Duration
	// OpTimeout is the per-frame read/write deadline; 0 selects
	// DefaultOpTimeout, negative disables deadlines entirely.
	OpTimeout time.Duration
	// MaxFrameBytes rejects incoming frames larger than this without
	// allocating; 0 selects DefaultMaxFrameBytes.
	MaxFrameBytes int
	// Heartbeat, when positive, enables the liveness side channel: each
	// neighbor pair keeps a dedicated heartbeat connection, pings flow both
	// ways every Heartbeat interval, and a neighbor silent for Heartbeat ×
	// HeartbeatMisses (or whose connection resets) is declared dead. The
	// ring then fails every pending and future collective immediately with
	// a typed *Error wrapping ErrPeerDead — seconds-fast crash detection
	// decoupled from OpTimeout, which stays long enough for slow but live
	// peers. All ranks must agree on whether heartbeats are on (it changes
	// the connection handshake).
	Heartbeat time.Duration
	// HeartbeatMisses is the consecutive-miss threshold; 0 selects
	// DefaultHeartbeatMisses.
	HeartbeatMisses int
	// Generation is the group generation this ring starts its handshake at.
	// A reforming group dials at its previous generation + 1; a rejoiner may
	// dial at 0 and discover the group's actual generation through handshake
	// rejections (it adopts the higher generation and retries within
	// SetupTimeout). Only meaningful with Heartbeat > 0 — without the
	// liveness layer the wire carries no generation.
	Generation uint64
	// Seed drives the deterministic jitter stream (fxrand) behind dial
	// retries and setup backoff, mixed with Rank so ranks desynchronize.
	// Chaos and recovery tests are reproducible from the run seed.
	Seed uint64
	// Members, when non-nil, forms the ring over a subset of the world:
	// the sorted original ranks participating in this incarnation. Rank is
	// then an original rank that must appear in Members, Addrs stays indexed
	// by original rank, and the ring's effective rank/size are the index in /
	// length of Members. Ring confirmation additionally circulates a digest
	// of the member list, so two ranks that disagree on who is in the group
	// can never splice into one ring. Nil means the full world [0,len(Addrs)).
	Members []int
	// Listener, when non-nil, is the already-bound listen socket for
	// Addrs[Rank]. Ring setup uses it without closing it, so an elastic
	// membership layer can keep one persistent listener across incarnations
	// (answering probes and joins between setups). Nil makes setup bind and
	// close its own.
	Listener net.Listener
}

// TCPRing is a real network implementation of Collective over a TCP ring:
// worker i accepts a connection from worker i-1 and dials worker i+1
// (mod n). AllreduceF32 runs the bandwidth-optimal ring algorithm
// (reduce-scatter followed by allgather, 2(n-1) steps), which is the same
// algorithm whose cost model internal/simnet uses for throughput projection —
// so the simulated and real substrates agree on communication structure.
//
// The transport is hardened against a hostile or failing wire: every frame
// read/write carries a deadline, incoming frame lengths are bounded by
// MaxFrameBytes before allocation, ring setup retries dials with jittered
// exponential backoff, and every failure is wrapped in a typed *Error
// carrying (rank, op, step).
type TCPRing struct {
	rank, n  int
	orig     int   // original rank (== rank unless Members narrowed the ring)
	members  []int // sorted original member ranks; nil = full world
	digest   uint64
	next     net.Conn // to rank+1
	prev     net.Conn // from rank-1
	nextW    *bufio.Writer
	prevR    *bufio.Reader
	opTO     time.Duration
	maxFrame int
	gen      uint64 // group generation this incarnation of the ring formed under
	step     atomic.Int64
	closed   atomic.Bool

	// opCtx is the context of the collective op in flight, set by the Ctx
	// method variants (nil for the plain methods). The handle is
	// single-goroutine by contract, and sendRecv's helper goroutine is
	// spawned after the field is written and joined before the op returns,
	// so no synchronization is needed.
	opCtx context.Context

	// Liveness side channel (nil/zero when RingConfig.Heartbeat is off).
	hbNext     *hbLink // heartbeat link to rank+1 (this side dialed)
	hbPrev     *hbLink // heartbeat link from rank-1 (this side accepted)
	hbInterval time.Duration
	hbMisses   int
	hbStop     chan struct{}

	peerMu  sync.Mutex
	peerErr error // first liveness failure; poisons all frame ops
}

// hbLink is one heartbeat connection plus the neighbor behind it. departed
// flips when the neighbor announces a graceful close (hbBye): its silence
// afterwards is expected, not a death.
type hbLink struct {
	conn     net.Conn
	peer     int
	departed atomic.Bool
}

var _ ContextCollective = (*TCPRing)(nil)

// DialTCPRing establishes the ring with default hardening knobs. addrs[i] is
// the listen address of rank i; every participant must call DialTCPRing
// concurrently. The timeout bounds the whole setup.
func DialTCPRing(rank int, addrs []string, timeout time.Duration) (*TCPRing, error) {
	return DialTCPRingConfig(RingConfig{Rank: rank, Addrs: addrs, SetupTimeout: timeout})
}

// DialTCPRingConfig establishes the ring with explicit hardening knobs.
//
// With heartbeats enabled the setup is generation-aware: the listener stays
// open across attempts, every connection handshakes the group generation, and
// an attempt that discovers a higher generation (through a handshake
// rejection or a mismatched confirmation token) restarts at that generation
// until SetupTimeout. This is what lets a reforming group converge on g+1
// while a respawned member dialing at generation 0 discovers the group's
// actual generation on the fly.
func DialTCPRingConfig(cfg RingConfig) (*TCPRing, error) {
	if cfg.Members != nil {
		// Narrow the world to the member subset: the effective ring is
		// indexed by position in the sorted member list, while Addrs (and
		// Rank on entry) stay in original-rank space.
		idx := indexOf(cfg.Members, cfg.Rank)
		if idx < 0 {
			return nil, fmt.Errorf("comm: rank %d not in ring members %v", cfg.Rank, cfg.Members)
		}
		sub := make([]string, len(cfg.Members))
		for i, m := range cfg.Members {
			if m < 0 || m >= len(cfg.Addrs) {
				return nil, fmt.Errorf("comm: ring member %d outside address table [0,%d)", m, len(cfg.Addrs))
			}
			if i > 0 && cfg.Members[i] <= cfg.Members[i-1] {
				return nil, fmt.Errorf("comm: ring members %v not strictly ascending", cfg.Members)
			}
			sub[i] = cfg.Addrs[m]
		}
		cfg.Rank, cfg.Addrs = idx, sub
	}
	rank, addrs := cfg.Rank, cfg.Addrs
	n := len(addrs)
	if n < 2 {
		return nil, fmt.Errorf("comm: tcp ring needs >= 2 workers, got %d", n)
	}
	if rank < 0 || rank >= n {
		return nil, fmt.Errorf("comm: rank %d out of [0,%d)", rank, n)
	}
	setupTO := cfg.SetupTimeout
	if setupTO <= 0 {
		setupTO = 30 * time.Second
	}
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", addrs[rank])
		if err != nil {
			return nil, wrapErr(rank, OpDial, 0, fmt.Errorf("listen %s: %w", addrs[rank], err))
		}
		defer ln.Close()
	}

	deadline := time.Now().Add(setupTO)
	rng := fxrand.New(cfg.Seed*0x9e3779b97f4a7c15 + uint64(rank) + 1)
	hb := cfg.Heartbeat > 0
	gen := cfg.Generation
	for attempt := 0; ; attempt++ {
		t, adopt, err := setupAttempt(cfg, ln, gen, deadline, rng)
		if err == nil {
			return t, nil
		}
		// Only the generation-aware protocol retries whole attempts: a
		// rejected handshake or a broken confirmation round means a peer is
		// reforming, not that setup failed. Legacy (no-heartbeat) setup keeps
		// its single-attempt semantics.
		if hb && time.Now().Before(deadline) {
			if adopt > gen {
				gen = adopt
			}
			// Brief jittered pause so restarting ranks don't re-collide.
			time.Sleep(time.Duration(rng.Int63()%int64(5*time.Millisecond)) + time.Millisecond)
			continue
		}
		return nil, wrapErr(rank, OpDial, 0, err)
	}
}

// acceptOut is the accept side's verdict for one setup attempt.
type acceptOut struct {
	data, hb net.Conn
	adopt    uint64 // non-zero: a dialer announced this higher generation
	err      error
}

// setupAttempt runs one complete ring-establishment attempt at a fixed
// generation: concurrent accept+classify of the predecessor's connections and
// dial of the successor's, followed (in generation mode) by a two-round ring
// confirmation that proves every member formed this same incarnation. On
// failure it reports the highest generation it learned about so the caller
// can adopt it.
func setupAttempt(cfg RingConfig, ln net.Listener, gen uint64, deadline time.Time, rng *fxrand.RNG) (*TCPRing, uint64, error) {
	rank, addrs := cfg.Rank, cfg.Addrs
	n := len(addrs)
	hb := cfg.Heartbeat > 0
	succ := addrs[(rank+1)%n]

	stop := make(chan struct{})
	acceptCh := make(chan acceptOut, 1)
	go func() { acceptCh <- acceptSide(ln, gen, hb, deadline, stop) }()

	var opened []net.Conn
	var adopt uint64
	// join collects the accept goroutine's verdict exactly once. The success
	// path waits for it to finish naturally (the predecessor may still be
	// dialing); the failure path abandons it through the stop channel first.
	var joined *acceptOut
	join := func(abandon bool) acceptOut {
		if joined == nil {
			if abandon {
				close(stop)
			}
			ao := <-acceptCh
			joined = &ao
		}
		return *joined
	}
	fail := func(err error) (*TCPRing, uint64, error) {
		ao := join(true)
		for _, c := range []net.Conn{ao.data, ao.hb} {
			if c != nil {
				c.Close()
			}
		}
		for _, c := range opened {
			c.Close()
		}
		if ao.adopt > adopt {
			adopt = ao.adopt
		}
		return nil, adopt, err
	}

	// Dial the successor's data connection (and, with heartbeats, the
	// liveness connection). In generation mode each dialed connection opens
	// with the role+generation handshake and must be accepted by the peer.
	next, dAdopt, err := dialHandshake(succ, preambleData, gen, hb, deadline, rng)
	if dAdopt > adopt {
		adopt = dAdopt
	}
	if err != nil {
		return fail(err)
	}
	opened = append(opened, next)
	var hbNext net.Conn
	if hb {
		hbNext, dAdopt, err = dialHandshake(succ, preambleHeartbeat, gen, hb, deadline, rng)
		if dAdopt > adopt {
			adopt = dAdopt
		}
		if err != nil {
			return fail(err)
		}
		opened = append(opened, hbNext)
	}

	// Wait for the accept side's verdict.
	ao := join(false)
	if ao.err != nil {
		return fail(ao.err)
	}
	prev, hbPrev := ao.data, ao.hb
	opened = append(opened, prev)
	if hbPrev != nil {
		opened = append(opened, hbPrev)
	}

	t := &TCPRing{rank: rank, n: n, orig: rank, next: next, prev: prev, gen: gen}
	if cfg.Members != nil {
		t.members = append([]int(nil), cfg.Members...)
		t.orig = cfg.Members[rank]
		t.digest = membershipDigest(cfg.Members)
	}
	t.nextW = bufio.NewWriterSize(next, 1<<16)
	t.prevR = bufio.NewReaderSize(prev, 1<<16)
	t.opTO = cfg.OpTimeout
	if t.opTO == 0 {
		t.opTO = DefaultOpTimeout
	}
	t.maxFrame = cfg.MaxFrameBytes
	if t.maxFrame <= 0 {
		t.maxFrame = DefaultMaxFrameBytes
	}
	if hb {
		// Ring confirmation: two token circulations carrying the generation.
		// Completing them proves every member of the loop handshook this
		// generation and is still alive — a neighbor that restarted into a
		// newer incarnation after its handshake breaks the round here, before
		// the ring is handed to callers.
		if peerGen, err := t.confirmRing(deadline); err != nil {
			if peerGen > adopt {
				adopt = peerGen
			}
			return fail(fmt.Errorf("ring confirmation: %w", err))
		}
		t.hbNext = &hbLink{conn: hbNext, peer: (rank + 1) % n}
		t.hbPrev = &hbLink{conn: hbPrev, peer: (rank - 1 + n) % n}
		t.hbInterval = cfg.Heartbeat
		t.hbMisses = cfg.HeartbeatMisses
		if t.hbMisses <= 0 {
			t.hbMisses = DefaultHeartbeatMisses
		}
		t.hbStop = make(chan struct{})
		go t.pingLoop()
		go t.watchLoop(t.hbPrev)
		go t.watchLoop(t.hbNext)
	}
	return t, 0, nil
}

// acceptSide collects and classifies the predecessor's connections for one
// setup attempt: the data stream, plus the heartbeat stream in generation
// mode. Generation-mode connections handshake first — a matching generation
// is accepted ('A'), a mismatch is rejected ('R') carrying the higher of the
// two generations, and a higher announced generation additionally abandons
// the attempt so the caller can adopt it. Malformed handshakes close the
// offending connection and keep listening: a hostile dialer must not be able
// to wedge ring setup.
func acceptSide(ln net.Listener, gen uint64, hb bool, deadline time.Time, stop chan struct{}) acceptOut {
	var out acceptOut
	cleanup := func() {
		for _, c := range []net.Conn{out.data, out.hb} {
			if c != nil {
				c.Close()
			}
		}
		out.data, out.hb = nil, nil
	}
	need := func() bool { return out.data == nil || (hb && out.hb == nil) }
	tl, _ := ln.(*net.TCPListener)
	for need() {
		select {
		case <-stop:
			cleanup()
			out.err = fmt.Errorf("setup attempt abandoned")
			return out
		default:
		}
		if tl != nil {
			poll := time.Now().Add(150 * time.Millisecond)
			if poll.After(deadline) {
				poll = deadline
			}
			tl.SetDeadline(poll)
		}
		c, err := ln.Accept()
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				if time.Now().After(deadline) {
					cleanup()
					out.err = fmt.Errorf("timed out waiting for predecessor")
					return out
				}
				continue
			}
			cleanup()
			out.err = fmt.Errorf("accept: %w", err)
			return out
		}
		if !hb {
			out.data = c
			continue
		}
		role, peerGen, err := readHandshake(c, deadline)
		if err != nil {
			c.Close() // hostile or truncated handshake: drop, keep listening
			continue
		}
		if role == hsProbe {
			// Elastic census probe: answer with our generation and keep
			// listening. Answered before the generation check so a probe
			// landing mid-setup reads as "alive", never as a death.
			writeHandshakeReply(c, hsAccept, gen, deadline)
			c.Close()
			continue
		}
		if role == hsJoin {
			// A joiner found us mid-setup; reject so it retries against a
			// formed member's elastic acceptor (the payload is its rank, so
			// the generation check below would misfire on it).
			writeHandshakeReply(c, hsReject, gen, deadline)
			c.Close()
			continue
		}
		if peerGen != gen {
			reject := gen
			if peerGen > reject {
				reject = peerGen
			}
			writeHandshakeReply(c, hsReject, reject, deadline)
			c.Close()
			if peerGen > gen {
				cleanup()
				out.adopt = peerGen
				out.err = fmt.Errorf("peer announced generation %d > %d", peerGen, gen)
				return out
			}
			continue // stale dialer; it will adopt our generation and retry
		}
		switch {
		case role == preambleData && out.data == nil:
			if err := writeHandshakeReply(c, hsAccept, gen, deadline); err != nil {
				c.Close()
				continue
			}
			out.data = c
		case role == preambleHeartbeat && out.hb == nil:
			if err := writeHandshakeReply(c, hsAccept, gen, deadline); err != nil {
				c.Close()
				continue
			}
			out.hb = c
		default:
			c.Close() // duplicate role: drop, keep listening
		}
	}
	return out
}

// dialHandshake dials the successor and, in generation mode, runs the
// role+generation handshake until accepted. A rejection carrying a higher
// generation aborts with that generation for the caller to adopt; a rejection
// at or below our own backs off and redials (the peer is still converging).
func dialHandshake(addr string, role byte, gen uint64, hb bool, deadline time.Time, rng *fxrand.RNG) (net.Conn, uint64, error) {
	for {
		c, err := dialRetry(addr, deadline, rng)
		if err != nil {
			return nil, 0, err
		}
		if !hb {
			return c, 0, nil
		}
		if err := writeHandshake(c, role, gen, deadline); err != nil {
			c.Close()
			return nil, 0, err
		}
		status, peerGen, err := readHandshakeReply(c, deadline)
		if err != nil {
			c.Close()
			if time.Now().After(deadline) {
				return nil, 0, fmt.Errorf("handshake with %s: %w", addr, err)
			}
			// The peer may be mid-restart between incarnations; pause and
			// redial.
			time.Sleep(time.Duration(rng.Int63()%int64(10*time.Millisecond)) + time.Millisecond)
			continue
		}
		if status == hsAccept {
			return c, 0, nil
		}
		c.Close()
		if peerGen > gen {
			return nil, peerGen, fmt.Errorf("handshake rejected: peer at generation %d > %d", peerGen, gen)
		}
		if time.Now().After(deadline) {
			return nil, 0, fmt.Errorf("handshake with %s: rejected at generation %d", addr, gen)
		}
		time.Sleep(time.Duration(rng.Int63()%int64(10*time.Millisecond)) + time.Millisecond)
	}
}

// confirmRing circulates a generation-stamped token around the ring twice.
// Completion proves the whole loop is alive at this generation; a mismatched
// token reports the peer's generation for adoption.
func (t *TCPRing) confirmRing(deadline time.Time) (uint64, error) {
	var tok [handshakeLen]byte
	for round := 0; round < 2; round++ {
		appendHandshakeInto(tok[:0], confirmMagic, t.gen)
		t.next.SetWriteDeadline(deadline)
		if _, err := t.nextW.Write(tok[:]); err != nil {
			return 0, err
		}
		if err := t.nextW.Flush(); err != nil {
			return 0, err
		}
		t.prev.SetReadDeadline(deadline)
		if _, err := ioReadFull(t.prevR, tok[:]); err != nil {
			return 0, err
		}
		kind, peerGen, err := parseHandshake(tok[:])
		if err != nil || kind != confirmMagic {
			return 0, fmt.Errorf("%w: bad confirmation token", ErrCorrupt)
		}
		if peerGen != t.gen {
			return peerGen, fmt.Errorf("%w: predecessor confirmed generation %d, ours %d",
				ErrStaleGeneration, peerGen, t.gen)
		}
	}
	if t.digest != 0 {
		// Membership round: the token carries the member-list digest instead
		// of the generation. A mismatch means two ranks formed this
		// generation with different ideas of who is in the group — a
		// retryable setup failure (no generation to adopt), so overlapping
		// elastic reforms self-stabilize instead of exchanging payloads
		// across disagreeing rings.
		appendHandshakeInto(tok[:0], confirmMagic, t.digest)
		t.next.SetWriteDeadline(deadline)
		if _, err := t.nextW.Write(tok[:]); err != nil {
			return 0, err
		}
		if err := t.nextW.Flush(); err != nil {
			return 0, err
		}
		t.prev.SetReadDeadline(deadline)
		if _, err := ioReadFull(t.prevR, tok[:]); err != nil {
			return 0, err
		}
		kind, peerDigest, err := parseHandshake(tok[:])
		if err != nil || kind != confirmMagic {
			return 0, fmt.Errorf("%w: bad membership confirmation token", ErrCorrupt)
		}
		if peerDigest != t.digest {
			return 0, fmt.Errorf("membership digest mismatch: predecessor %016x, ours %016x", peerDigest, t.digest)
		}
	}
	t.next.SetWriteDeadline(time.Time{})
	t.prev.SetReadDeadline(time.Time{})
	return 0, nil
}

// dialRetry dials addr with jittered exponential backoff until it connects
// or the deadline passes. The jitter stream is deterministic (fxrand seeded
// from RingConfig.Seed and the rank), so chaos and recovery runs retry in a
// reproducible pattern while still desynchronizing the ranks' retry storms.
func dialRetry(addr string, deadline time.Time, rng *fxrand.RNG) (net.Conn, error) {
	backoff := 10 * time.Millisecond
	for {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			return c, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("dial %s: %w", addr, err)
		}
		sleep := backoff/2 + time.Duration(rng.Int63()%int64(backoff))
		if remain := time.Until(deadline); sleep > remain {
			sleep = remain
		}
		time.Sleep(sleep)
		if backoff < 500*time.Millisecond {
			backoff *= 2
		}
	}
}

// appendHandshakeInto encodes a handshake-format record (kind byte + 8-byte
// big-endian generation) into dst.
func appendHandshakeInto(dst []byte, kind byte, gen uint64) []byte {
	dst = append(dst, kind)
	var g [8]byte
	binary.BigEndian.PutUint64(g[:], gen)
	return append(dst, g[:]...)
}

// parseHandshake decodes a dialer's opening record: role ('G' data or 'H'
// heartbeat) plus generation. Anything else is protocol corruption.
func parseHandshake(b []byte) (kind byte, gen uint64, err error) {
	if len(b) != handshakeLen {
		return 0, 0, fmt.Errorf("%w: handshake record is %d bytes, want %d", ErrCorrupt, len(b), handshakeLen)
	}
	kind = b[0]
	switch kind {
	case preambleData, preambleHeartbeat, confirmMagic, hsProbe, hsJoin:
	default:
		return 0, 0, fmt.Errorf("%w: unknown handshake kind %q", ErrCorrupt, kind)
	}
	return kind, binary.BigEndian.Uint64(b[1:]), nil
}

// parseHandshakeReply decodes an acceptor's reply: accept/reject plus the
// generation the verdict refers to.
func parseHandshakeReply(b []byte) (status byte, gen uint64, err error) {
	if len(b) != handshakeLen {
		return 0, 0, fmt.Errorf("%w: handshake reply is %d bytes, want %d", ErrCorrupt, len(b), handshakeLen)
	}
	status = b[0]
	if status != hsAccept && status != hsReject {
		return 0, 0, fmt.Errorf("%w: unknown handshake reply %q", ErrCorrupt, status)
	}
	return status, binary.BigEndian.Uint64(b[1:]), nil
}

func writeHandshake(c net.Conn, role byte, gen uint64, deadline time.Time) error {
	if err := c.SetWriteDeadline(deadline); err != nil {
		return err
	}
	defer c.SetWriteDeadline(time.Time{})
	_, err := c.Write(appendHandshakeInto(nil, role, gen))
	return err
}

func readHandshake(c net.Conn, deadline time.Time) (byte, uint64, error) {
	b, err := readHandshakeBytes(c, deadline)
	if err != nil {
		return 0, 0, err
	}
	return parseHandshake(b)
}

func writeHandshakeReply(c net.Conn, status byte, gen uint64, deadline time.Time) error {
	if err := c.SetWriteDeadline(deadline); err != nil {
		return err
	}
	defer c.SetWriteDeadline(time.Time{})
	_, err := c.Write(appendHandshakeInto(nil, status, gen))
	return err
}

func readHandshakeReply(c net.Conn, deadline time.Time) (byte, uint64, error) {
	b, err := readHandshakeBytes(c, deadline)
	if err != nil {
		return 0, 0, err
	}
	return parseHandshakeReply(b)
}

func readHandshakeBytes(c net.Conn, deadline time.Time) ([]byte, error) {
	// Individual handshakes answer fast or not at all; bound each one to a
	// slice of the setup budget so one wedged dialer can't consume it all.
	hsDeadline := time.Now().Add(2 * time.Second)
	if hsDeadline.After(deadline) {
		hsDeadline = deadline
	}
	if err := c.SetReadDeadline(hsDeadline); err != nil {
		return nil, err
	}
	defer c.SetReadDeadline(time.Time{})
	var b [handshakeLen]byte
	if _, err := io.ReadFull(c, b[:]); err != nil {
		return nil, err
	}
	return b[:], nil
}

// pingLoop writes one generation-stamped ping record to each heartbeat
// neighbor every interval. A write failure means the neighbor's socket reset
// — declare it dead rather than waiting for the read side to time out.
func (t *TCPRing) pingLoop() {
	ping := appendHandshakeInto(nil, preambleHeartbeat, t.gen)
	ticker := time.NewTicker(t.hbInterval)
	defer ticker.Stop()
	for {
		select {
		case <-t.hbStop:
			return
		case <-ticker.C:
		}
		for _, link := range []*hbLink{t.hbNext, t.hbPrev} {
			if link.departed.Load() {
				continue
			}
			link.conn.SetWriteDeadline(time.Now().Add(t.hbInterval))
			if _, err := link.conn.Write(ping); err != nil {
				if !t.closed.Load() && !link.departed.Load() {
					t.failPeer(link.peer, fmt.Errorf("heartbeat write: %w", err))
				}
				return
			}
			telemetry.Default.Add(telemetry.CtrHeartbeatPings, 1)
		}
	}
}

// hbParser is the stateful decoder of one heartbeat stream: a sequence of
// 9-byte generation-stamped ping records interleaved with single goodbye
// bytes, arriving in arbitrary read-sized pieces. Partial records are carried
// across feeds.
type hbParser struct {
	buf []byte
}

// feed consumes one read's worth of bytes and reports whether a goodbye was
// seen. A record with an unknown kind is protocol corruption; a ping stamped
// with a generation other than gen is a stale (or future) incarnation talking
// on this incarnation's wire — both are returned as typed errors for the
// liveness verdict.
func (p *hbParser) feed(b []byte, gen uint64) (bye bool, err error) {
	p.buf = append(p.buf, b...)
	for len(p.buf) > 0 {
		switch p.buf[0] {
		case hbBye:
			return true, nil
		case preambleHeartbeat:
			if len(p.buf) < handshakeLen {
				return false, nil // partial ping; wait for the rest
			}
			_, pingGen, perr := parseHandshake(p.buf[:handshakeLen])
			if perr != nil {
				return false, perr
			}
			if pingGen != gen {
				return false, fmt.Errorf("%w: ping stamped generation %d, ours %d",
					ErrStaleGeneration, pingGen, gen)
			}
			p.buf = p.buf[handshakeLen:]
		default:
			return false, fmt.Errorf("%w: unknown heartbeat record kind %q", ErrCorrupt, p.buf[0])
		}
	}
	return false, nil
}

// watchLoop reads pings from one heartbeat connection. hbMisses consecutive
// silent intervals, or a connection reset, declare the peer dead; a goodbye
// record instead marks an orderly departure and ends the watch without
// declaring anything. A corrupt record or a ping from another generation is
// an immediate death verdict carrying the typed cause. Watching interval by
// interval (rather than one read with a window-sized deadline) keeps the same
// death timing — hbInterval × hbMisses of total silence — while making each
// individual miss observable as a telemetry counter tick before the verdict
// lands.
func (t *TCPRing) watchLoop(link *hbLink) {
	buf := make([]byte, 64)
	var parser hbParser
	misses := 0
	for {
		link.conn.SetReadDeadline(time.Now().Add(t.hbInterval))
		n, err := link.conn.Read(buf)
		if n > 0 {
			misses = 0
		}
		bye, perr := parser.feed(buf[:n], t.gen)
		if bye {
			link.departed.Store(true)
			link.conn.Close()
			return
		}
		if perr != nil {
			if !t.closed.Load() && !link.departed.Load() {
				t.failPeer(link.peer, fmt.Errorf("heartbeat stream: %w", perr))
			} else {
				link.conn.Close()
			}
			return
		}
		if err == nil {
			continue
		}
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			misses++
			if !t.closed.Load() && !link.departed.Load() {
				telemetry.Default.Add(telemetry.CtrHeartbeatMisses, 1)
			}
			if misses < t.hbMisses {
				continue
			}
			err = fmt.Errorf("silent for %d intervals: %w", misses, err)
		}
		if !t.closed.Load() && !link.departed.Load() {
			t.failPeer(link.peer, fmt.Errorf("heartbeat silent/reset: %w", err))
		} else {
			link.conn.Close()
		}
		return
	}
}

// failPeer records the first liveness failure as a typed *Error wrapping
// ErrPeerDead and closes every connection: pending frame ops fail
// immediately instead of running out their OpTimeout, and the teardown
// cascades the death announcement to the other neighbor.
func (t *TCPRing) failPeer(peer int, cause error) {
	t.peerMu.Lock()
	first := t.peerErr == nil
	if first {
		t.peerErr = &Error{
			Rank: t.rank,
			Op:   OpHeartbeat,
			Step: t.step.Load(),
			Err:  fmt.Errorf("ring neighbor rank %d: %w (%w)", peer, ErrPeerDead, cause),
		}
	}
	verdict := t.peerErr
	t.peerMu.Unlock()
	if first {
		telemetry.Default.Add(telemetry.CtrPeerDeaths, 1)
		telemetry.Default.Mark("peer_dead:rank"+strconv.Itoa(peer), t.rank)
		xrank.Default.RecordFault(t.rank, xrank.OpHeartbeat, t.step.Load(), xrank.FaultPeerDead)
		xrank.Default.Flight("peer_dead", verdict)
	}
	t.next.Close()
	t.prev.Close()
	if t.hbNext != nil {
		t.hbNext.conn.Close()
	}
	if t.hbPrev != nil {
		t.hbPrev.conn.Close()
	}
}

// livenessErr returns the recorded peer-death error, if any.
func (t *TCPRing) livenessErr() error {
	t.peerMu.Lock()
	defer t.peerMu.Unlock()
	return t.peerErr
}

// frameErr maps a raw frame-op failure to the liveness error when one is
// recorded: the interesting fact is that the neighbor died, not that the
// locally-closed socket reported "use of closed connection".
func (t *TCPRing) frameErr(err error) error {
	if err == nil {
		return nil
	}
	if le := t.livenessErr(); le != nil {
		return le
	}
	// A frame failing under an expired op context is the context's doing
	// (beginOp pokes the socket deadlines on cancellation): surface the
	// context error so errors.Is(err, context.Canceled/DeadlineExceeded)
	// works at the call site.
	if ce := t.ctxErr(); ce != nil {
		return fmt.Errorf("%w (%v)", ce, err)
	}
	// A frame op failing because the neighbor just died races the watchLoop's
	// verdict: the data and heartbeat sockets reset at the same instant. Give
	// the liveness layer one miss window to render its judgment so callers see
	// ErrPeerDead rather than a bare EOF/reset.
	if t.hbStop != nil && !t.closed.Load() {
		deadline := time.Now().Add(t.hbInterval * time.Duration(t.hbMisses))
		for time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
			if le := t.livenessErr(); le != nil {
				return le
			}
		}
	}
	return err
}

// Close tears down both ring connections (and the heartbeat channel, when
// enabled). Safe to call from another goroutine to reset a worker stuck
// mid-collective: its pending frame ops fail immediately.
func (t *TCPRing) Close() error {
	if !t.closed.CompareAndSwap(false, true) {
		return nil
	}
	if t.hbStop != nil {
		close(t.hbStop)
		window := t.hbInterval * time.Duration(t.hbMisses)
		sayGoodbye(t.hbNext, window)
		sayGoodbye(t.hbPrev, window)
	}
	err1 := t.next.Close()
	err2 := t.prev.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// Kill abruptly severs every ring and heartbeat connection without the
// goodbye handshake, reproducing the socket teardown of a process death:
// neighbors observe resets/silence with no preceding bye and declare this
// rank dead with ErrPeerDead. For fault-injection harnesses; an orderly
// shutdown is Close. A later Close is a no-op.
func (t *TCPRing) Kill() {
	if !t.closed.CompareAndSwap(false, true) {
		return
	}
	if t.hbStop != nil {
		close(t.hbStop)
	}
	t.next.Close()
	t.prev.Close()
	if t.hbNext != nil {
		t.hbNext.conn.Close()
	}
	if t.hbPrev != nil {
		t.hbPrev.conn.Close()
	}
}

// Hang freezes this rank without touching its sockets, reproducing a stalled
// process (SIGSTOP, a wedged disk, a pathological GC pause): connections stay
// open and ACKing, but pings stop, so neighbors' liveness layer must reach
// its verdict through the full miss window rather than a socket reset. For
// fault-injection harnesses; the abrupt socket teardown of a process death
// is Kill. A later Close is a no-op.
func (t *TCPRing) Hang() {
	if !t.closed.CompareAndSwap(false, true) {
		return
	}
	if t.hbStop != nil {
		close(t.hbStop)
	}
}

// sayGoodbye announces an orderly departure on one heartbeat link: the bye
// byte followed by a write-side FIN. The connection is fully closed only
// after the neighbor has had a whole miss window to read the announcement —
// an immediate close could reset the connection and destroy the bye in
// flight, turning a clean shutdown into a false death.
func sayGoodbye(link *hbLink, window time.Duration) {
	link.conn.SetWriteDeadline(time.Now().Add(window))
	link.conn.Write([]byte{hbBye})
	if tc, ok := link.conn.(*net.TCPConn); ok {
		tc.CloseWrite()
		time.AfterFunc(2*window, func() { tc.Close() })
	} else {
		link.conn.Close()
	}
}

// Rank returns this worker's rank.
func (t *TCPRing) Rank() int { return t.rank }

// Size returns the ring size.
func (t *TCPRing) Size() int { return t.n }

// MaxFrameBytes reports the configured incoming-frame bound.
func (t *TCPRing) MaxFrameBytes() int { return t.maxFrame }

// Generation reports the group generation this ring incarnation formed under
// (always 0 when heartbeats are off — the legacy wire carries no generation).
func (t *TCPRing) Generation() uint64 { return t.gen }

// Step reports how many collective operations this handle has performed.
func (t *TCPRing) Step() int64 { return t.step.Load() }

// OriginalRank reports this worker's lifetime identity: equal to Rank unless
// RingConfig.Members narrowed the ring to a subset of the world.
func (t *TCPRing) OriginalRank() int { return t.orig }

// Membership reports the member set this incarnation of the ring formed
// over. For a full-world ring that is simply [0,n).
func (t *TCPRing) Membership() Membership {
	members := t.members
	if members == nil {
		members = make([]int, t.n)
		for i := range members {
			members[i] = i
		}
	}
	return Membership{Gen: t.gen, Members: append([]int(nil), members...), Rank: t.rank}
}

// beginOp arms one collective op with a context: an already-expired ctx
// refuses to start, a ctx deadline caps every frame deadline inside the op
// (see frameDeadline), and a cancellation fires an immediate socket deadline
// so in-flight reads/writes unblock promptly instead of running out
// OpTimeout. The returned func disarms; callers must run it before the op
// returns.
func (t *TCPRing) beginOp(ctx context.Context) (func(), error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t.opCtx = ctx
	var stop func() bool
	if ctx.Done() != nil {
		stop = context.AfterFunc(ctx, func() {
			now := time.Now()
			t.next.SetDeadline(now)
			t.prev.SetDeadline(now)
		})
	}
	return func() {
		if stop != nil {
			stop()
		}
		t.opCtx = nil
	}, nil
}

// frameDeadline picks the effective deadline of one frame op: the per-frame
// OpTimeout, tightened by the op context's deadline when one is set. Zero
// means no deadline (OpTimeout disabled, no ctx deadline).
func (t *TCPRing) frameDeadline() time.Time {
	var dl time.Time
	if t.opTO > 0 {
		dl = time.Now().Add(t.opTO)
	}
	if t.opCtx != nil {
		if cd, ok := t.opCtx.Deadline(); ok && (dl.IsZero() || cd.Before(dl)) {
			dl = cd
		}
	}
	return dl
}

// ctxErr reports the in-flight op context's error, if any. Checked at frame
// boundaries so a cancelled op stops between frames even if the
// cancellation's socket-deadline poke raced a frame op re-arming the
// deadline. A context whose deadline has passed counts as expired even
// before its internal timer fires: frame deadlines are set to the ctx
// deadline, so a socket timeout can beat the context's own cancellation by
// a few microseconds, and that wire error must still surface as
// DeadlineExceeded.
func (t *TCPRing) ctxErr() error {
	if t.opCtx == nil {
		return nil
	}
	if err := t.opCtx.Err(); err != nil {
		return err
	}
	if dl, ok := t.opCtx.Deadline(); ok && !time.Now().Before(dl) {
		return context.DeadlineExceeded
	}
	return nil
}

// AllreduceF32Ctx is AllreduceF32 bounded by ctx (see beginOp).
func (t *TCPRing) AllreduceF32Ctx(ctx context.Context, x []float32) error {
	end, err := t.beginOp(ctx)
	if err != nil {
		return wrapErr(t.rank, OpAllreduce, t.step.Load(), err)
	}
	defer end()
	return t.AllreduceF32(x)
}

// AllgatherBytesCtx is AllgatherBytes bounded by ctx (see beginOp).
func (t *TCPRing) AllgatherBytesCtx(ctx context.Context, b []byte) ([][]byte, error) {
	end, err := t.beginOp(ctx)
	if err != nil {
		return nil, wrapErr(t.rank, OpAllgather, t.step.Load(), err)
	}
	defer end()
	return t.AllgatherBytes(b)
}

// BroadcastBytesCtx is BroadcastBytes bounded by ctx (see beginOp).
func (t *TCPRing) BroadcastBytesCtx(ctx context.Context, b []byte, root int) ([]byte, error) {
	end, err := t.beginOp(ctx)
	if err != nil {
		return nil, wrapErr(t.rank, OpBroadcast, t.step.Load(), err)
	}
	defer end()
	return t.BroadcastBytes(b, root)
}

// BarrierCtx is Barrier bounded by ctx (see beginOp).
func (t *TCPRing) BarrierCtx(ctx context.Context) error {
	end, err := t.beginOp(ctx)
	if err != nil {
		return wrapErr(t.rank, OpBarrier, t.step.Load(), err)
	}
	defer end()
	return t.Barrier()
}

// sendFrame writes one length-prefixed frame to the successor under the
// per-op write deadline.
func (t *TCPRing) sendFrame(b []byte) error {
	if err := t.livenessErr(); err != nil {
		return err
	}
	if err := t.ctxErr(); err != nil {
		return err
	}
	if len(b) > t.maxFrame {
		return fmt.Errorf("%w: sending %d bytes > limit %d", ErrFrameTooLarge, len(b), t.maxFrame)
	}
	span := telemetry.Default.Start()
	if dl := t.frameDeadline(); !dl.IsZero() {
		if err := t.next.SetWriteDeadline(dl); err != nil {
			return t.frameErr(fmt.Errorf("set write deadline: %w", err))
		}
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := t.nextW.Write(hdr[:]); err != nil {
		return t.frameErr(err)
	}
	if _, err := t.nextW.Write(b); err != nil {
		return t.frameErr(err)
	}
	if err := t.frameErr(t.nextW.Flush()); err != nil {
		return err
	}
	telemetry.Default.Add(telemetry.CtrWireBytesSent, int64(4+len(b)))
	telemetry.Default.Observe(telemetry.PhaseWireSend, t.rank, telemetry.TIDWireSend, "", span)
	return nil
}

// recvFrame reads one length-prefixed frame from the predecessor under the
// per-op read deadline. A header announcing more than MaxFrameBytes is
// rejected before any body allocation: a corrupt or hostile 4-byte prefix
// must not be able to demand a multi-gigabyte buffer.
func (t *TCPRing) recvFrame() ([]byte, error) {
	if err := t.livenessErr(); err != nil {
		return nil, err
	}
	if err := t.ctxErr(); err != nil {
		return nil, err
	}
	span := telemetry.Default.Start()
	if dl := t.frameDeadline(); !dl.IsZero() {
		if err := t.prev.SetReadDeadline(dl); err != nil {
			return nil, t.frameErr(fmt.Errorf("set read deadline: %w", err))
		}
	}
	b, err := readFrame(t.prevR, t.maxFrame)
	if err != nil {
		return b, t.frameErr(err)
	}
	telemetry.Default.Add(telemetry.CtrWireBytesRecv, int64(4+len(b)))
	telemetry.Default.Observe(telemetry.PhaseWireRecv, t.rank, telemetry.TIDWireRecv, "", span)
	return b, nil
}

// readFrame decodes one length-prefixed frame from r, rejecting bodies
// larger than maxFrame without allocating them. It is the ring's frame codec,
// factored out so the fuzz harness can drive it with arbitrary byte streams.
func readFrame(r *bufio.Reader, maxFrame int) ([]byte, error) {
	var hdr [4]byte
	if _, err := ioReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if uint64(n) > uint64(maxFrame) {
		return nil, fmt.Errorf("%w: header claims %d bytes > limit %d", ErrFrameTooLarge, n, maxFrame)
	}
	buf := make([]byte, n)
	if _, err := ioReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// appendFrame encodes b as a length-prefixed frame onto dst; the inverse of
// readFrame, exposed for the codec fuzz harness.
func appendFrame(dst, b []byte) []byte {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(b)))
	dst = append(dst, hdr[:]...)
	return append(dst, b...)
}

// sendRecv overlaps a send to the successor with a receive from the
// predecessor, which is what keeps the ring deadlock-free for large frames.
func (t *TCPRing) sendRecv(out []byte) ([]byte, error) {
	errCh := make(chan error, 1)
	go func() { errCh <- t.sendFrame(out) }()
	in, rerr := t.recvFrame()
	serr := <-errCh
	if serr != nil {
		return nil, fmt.Errorf("ring send: %w", serr)
	}
	if rerr != nil {
		return nil, fmt.Errorf("ring recv: %w", rerr)
	}
	return in, nil
}

// AllreduceF32 performs ring allreduce: reduce-scatter then allgather.
func (t *TCPRing) AllreduceF32(x []float32) error {
	step := t.step.Add(1)
	telemetry.Default.Add(telemetry.CtrCollectiveOps, 1)
	xt0 := xrank.Default.Start()
	err := t.allreduceRounds(step, x)
	xrank.Default.RecordOp(t.rank, xrank.OpAllreduce, step, int64(len(x)*4), xt0)
	return err
}

// allreduceRounds is AllreduceF32's ring schedule, split out so the op-level
// xrank event covers exactly the time spent in ring I/O.
func (t *TCPRing) allreduceRounds(step int64, x []float32) error {
	n := t.n
	chunk := func(i int) (lo, hi int) {
		i = ((i % n) + n) % n
		lo = i * len(x) / n
		hi = (i + 1) * len(x) / n
		return
	}
	// Reduce-scatter: after n-1 steps, rank r holds the fully reduced chunk
	// (r+1) mod n.
	for s := 0; s < n-1; s++ {
		sendLo, sendHi := chunk(t.rank - s)
		recvLo, recvHi := chunk(t.rank - s - 1)
		in, err := t.sendRecv(f32ToBytes(x[sendLo:sendHi]))
		if err != nil {
			return wrapErr(t.rank, OpAllreduce, step, err)
		}
		recv := bytesToF32(in)
		if len(recv) != recvHi-recvLo {
			return wrapErr(t.rank, OpAllreduce, step, fmt.Errorf("allreduce chunk size mismatch"))
		}
		for i, v := range recv {
			x[recvLo+i] += v
		}
	}
	// Allgather of the reduced chunks.
	for s := 0; s < n-1; s++ {
		sendLo, sendHi := chunk(t.rank + 1 - s)
		recvLo, recvHi := chunk(t.rank - s)
		in, err := t.sendRecv(f32ToBytes(x[sendLo:sendHi]))
		if err != nil {
			return wrapErr(t.rank, OpAllreduce, step, err)
		}
		recv := bytesToF32(in)
		if len(recv) != recvHi-recvLo {
			return wrapErr(t.rank, OpAllreduce, step, fmt.Errorf("allgather chunk size mismatch"))
		}
		copy(x[recvLo:recvHi], recv)
	}
	return nil
}

// AllgatherBytes circulates payloads around the ring for n-1 steps.
func (t *TCPRing) AllgatherBytes(b []byte) ([][]byte, error) {
	step := t.step.Add(1)
	telemetry.Default.Add(telemetry.CtrCollectiveOps, 1)
	xt0 := xrank.Default.Start()
	out, err := t.gatherRounds(step, b)
	xrank.Default.RecordOp(t.rank, xrank.OpAllgather, step, int64(len(b)), xt0)
	return out, err
}

func (t *TCPRing) gatherRounds(step int64, b []byte) ([][]byte, error) {
	out := make([][]byte, t.n)
	out[t.rank] = b
	cur := b
	for s := 0; s < t.n-1; s++ {
		in, err := t.sendRecv(cur)
		if err != nil {
			return nil, wrapErr(t.rank, OpAllgather, step, err)
		}
		origin := ((t.rank-s-1)%t.n + t.n) % t.n
		out[origin] = in
		cur = in
	}
	return out, nil
}

// BroadcastBytes forwards root's payload around the ring.
func (t *TCPRing) BroadcastBytes(b []byte, root int) ([]byte, error) {
	step := t.step.Add(1)
	telemetry.Default.Add(telemetry.CtrCollectiveOps, 1)
	xt0 := xrank.Default.Start()
	out, err := t.broadcastRounds(step, b, root)
	xrank.Default.RecordOp(t.rank, xrank.OpBroadcast, step, int64(len(b)), xt0)
	return out, err
}

func (t *TCPRing) broadcastRounds(step int64, b []byte, root int) ([]byte, error) {
	if root < 0 || root >= t.n {
		return nil, wrapErr(t.rank, OpBroadcast, step, fmt.Errorf("broadcast root %d out of range", root))
	}
	if t.rank == root {
		if err := t.sendFrame(b); err != nil {
			return nil, wrapErr(t.rank, OpBroadcast, step, err)
		}
		// Absorb the frame completing the loop.
		if _, err := t.recvFrame(); err != nil {
			return nil, wrapErr(t.rank, OpBroadcast, step, err)
		}
		return b, nil
	}
	in, err := t.recvFrame()
	if err != nil {
		return nil, wrapErr(t.rank, OpBroadcast, step, err)
	}
	if err := t.sendFrame(in); err != nil {
		return nil, wrapErr(t.rank, OpBroadcast, step, err)
	}
	return in, nil
}

// Barrier circulates an empty token twice so that completion implies every
// worker has entered.
func (t *TCPRing) Barrier() error {
	step := t.step.Add(1)
	telemetry.Default.Add(telemetry.CtrCollectiveOps, 1)
	xt0 := xrank.Default.Start()
	var err error
	for s := 0; s < 2; s++ {
		if _, e := t.sendRecv(nil); e != nil {
			err = wrapErr(t.rank, OpBarrier, step, e)
			break
		}
	}
	xrank.Default.RecordOp(t.rank, xrank.OpBarrier, step, 0, xt0)
	return err
}

func ioReadFull(r *bufio.Reader, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := r.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func putF32(b []byte, v float32) {
	binary.LittleEndian.PutUint32(b, math.Float32bits(v))
}

func getF32(b []byte) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(b))
}
