package comm

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Transport hardening defaults. Production gradients are large but bounded;
// a frame header claiming more than MaxFrameBytes is treated as corruption —
// the body is rejected before any allocation happens.
const (
	// DefaultMaxFrameBytes bounds a single ring frame (256 MiB).
	DefaultMaxFrameBytes = 256 << 20
	// DefaultOpTimeout bounds each frame read/write on the wire. A peer that
	// stalls longer than this mid-collective surfaces a timeout error instead
	// of hanging the group forever.
	DefaultOpTimeout = 2 * time.Minute
	// DefaultHeartbeatMisses is how many consecutive silent heartbeat
	// intervals declare a neighbor dead.
	DefaultHeartbeatMisses = 3
)

// Connection preambles distinguish the data stream from the heartbeat side
// channel when RingConfig.Heartbeat is enabled; without heartbeats the wire
// format carries no preamble and stays byte-compatible with older rings.
const (
	preambleData      = 'G'
	preambleHeartbeat = 'H'
	// hbBye is sent on the heartbeat channel by a rank closing gracefully,
	// so neighbors still draining their final collective can tell an orderly
	// departure from a crash.
	hbBye = 'B'
)

// RingConfig tunes the hardened TCP ring transport beyond the required rank
// and address list. The zero value of every knob selects the documented
// default.
type RingConfig struct {
	// Rank is this worker's id; Addrs[i] is the listen address of rank i.
	Rank  int
	Addrs []string
	// SetupTimeout bounds the whole ring establishment (accept + dial),
	// default 30s.
	SetupTimeout time.Duration
	// OpTimeout is the per-frame read/write deadline; 0 selects
	// DefaultOpTimeout, negative disables deadlines entirely.
	OpTimeout time.Duration
	// MaxFrameBytes rejects incoming frames larger than this without
	// allocating; 0 selects DefaultMaxFrameBytes.
	MaxFrameBytes int
	// Heartbeat, when positive, enables the liveness side channel: each
	// neighbor pair keeps a dedicated heartbeat connection, pings flow both
	// ways every Heartbeat interval, and a neighbor silent for Heartbeat ×
	// HeartbeatMisses (or whose connection resets) is declared dead. The
	// ring then fails every pending and future collective immediately with
	// a typed *Error wrapping ErrPeerDead — seconds-fast crash detection
	// decoupled from OpTimeout, which stays long enough for slow but live
	// peers. All ranks must agree on whether heartbeats are on (it changes
	// the connection handshake).
	Heartbeat time.Duration
	// HeartbeatMisses is the consecutive-miss threshold; 0 selects
	// DefaultHeartbeatMisses.
	HeartbeatMisses int
}

// TCPRing is a real network implementation of Collective over a TCP ring:
// worker i accepts a connection from worker i-1 and dials worker i+1
// (mod n). AllreduceF32 runs the bandwidth-optimal ring algorithm
// (reduce-scatter followed by allgather, 2(n-1) steps), which is the same
// algorithm whose cost model internal/simnet uses for throughput projection —
// so the simulated and real substrates agree on communication structure.
//
// The transport is hardened against a hostile or failing wire: every frame
// read/write carries a deadline, incoming frame lengths are bounded by
// MaxFrameBytes before allocation, ring setup retries dials with jittered
// exponential backoff, and every failure is wrapped in a typed *Error
// carrying (rank, op, step).
type TCPRing struct {
	rank, n  int
	next     net.Conn // to rank+1
	prev     net.Conn // from rank-1
	nextW    *bufio.Writer
	prevR    *bufio.Reader
	opTO     time.Duration
	maxFrame int
	step     atomic.Int64
	closed   atomic.Bool

	// opCtx is the context of the collective op in flight, set by the Ctx
	// method variants (nil for the plain methods). The handle is
	// single-goroutine by contract, and sendRecv's helper goroutine is
	// spawned after the field is written and joined before the op returns,
	// so no synchronization is needed.
	opCtx context.Context

	// Liveness side channel (nil/zero when RingConfig.Heartbeat is off).
	hbNext     *hbLink // heartbeat link to rank+1 (this side dialed)
	hbPrev     *hbLink // heartbeat link from rank-1 (this side accepted)
	hbInterval time.Duration
	hbMisses   int
	hbStop     chan struct{}

	peerMu  sync.Mutex
	peerErr error // first liveness failure; poisons all frame ops
}

// hbLink is one heartbeat connection plus the neighbor behind it. departed
// flips when the neighbor announces a graceful close (hbBye): its silence
// afterwards is expected, not a death.
type hbLink struct {
	conn     net.Conn
	peer     int
	departed atomic.Bool
}

var _ ContextCollective = (*TCPRing)(nil)

// DialTCPRing establishes the ring with default hardening knobs. addrs[i] is
// the listen address of rank i; every participant must call DialTCPRing
// concurrently. The timeout bounds the whole setup.
func DialTCPRing(rank int, addrs []string, timeout time.Duration) (*TCPRing, error) {
	return DialTCPRingConfig(RingConfig{Rank: rank, Addrs: addrs, SetupTimeout: timeout})
}

// DialTCPRingConfig establishes the ring with explicit hardening knobs.
func DialTCPRingConfig(cfg RingConfig) (*TCPRing, error) {
	rank, addrs := cfg.Rank, cfg.Addrs
	n := len(addrs)
	if n < 2 {
		return nil, fmt.Errorf("comm: tcp ring needs >= 2 workers, got %d", n)
	}
	if rank < 0 || rank >= n {
		return nil, fmt.Errorf("comm: rank %d out of [0,%d)", rank, n)
	}
	setupTO := cfg.SetupTimeout
	if setupTO <= 0 {
		setupTO = 30 * time.Second
	}
	ln, err := net.Listen("tcp", addrs[rank])
	if err != nil {
		return nil, wrapErr(rank, OpDial, 0, fmt.Errorf("listen %s: %w", addrs[rank], err))
	}
	defer ln.Close()

	hb := cfg.Heartbeat > 0
	wantAccepts := 1
	if hb {
		wantAccepts = 2 // data + heartbeat from the predecessor
	}
	type acceptResult struct {
		conn net.Conn
		err  error
	}
	acceptCh := make(chan acceptResult, wantAccepts)
	go func() {
		for i := 0; i < wantAccepts; i++ {
			c, err := ln.Accept()
			acceptCh <- acceptResult{c, err}
			if err != nil {
				return
			}
		}
	}()

	deadline := time.Now().Add(setupTO)
	succ := addrs[(rank+1)%n]

	// cleanup closes whatever connections setup opened before a failure.
	var opened []net.Conn
	fail := func(err error) (*TCPRing, error) {
		for _, c := range opened {
			c.Close()
		}
		return nil, wrapErr(rank, OpDial, 0, err)
	}

	// Dial the successor's data connection (and, with heartbeats, the
	// liveness connection). Each dialed connection announces its role with a
	// preamble byte so the acceptor can classify them in either arrival
	// order; without heartbeats no preamble is sent and the wire format is
	// unchanged.
	next, err := dialRetry(succ, deadline)
	if err != nil {
		return fail(err)
	}
	opened = append(opened, next)
	var hbNext net.Conn
	if hb {
		if err := writePreamble(next, preambleData, deadline); err != nil {
			return fail(err)
		}
		if hbNext, err = dialRetry(succ, deadline); err != nil {
			return fail(err)
		}
		opened = append(opened, hbNext)
		if err := writePreamble(hbNext, preambleHeartbeat, deadline); err != nil {
			return fail(err)
		}
	}

	// Collect and classify the predecessor's connections.
	var prev, hbPrev net.Conn
	for i := 0; i < wantAccepts; i++ {
		select {
		case ar := <-acceptCh:
			if ar.err != nil {
				return fail(fmt.Errorf("accept: %w", ar.err))
			}
			opened = append(opened, ar.conn)
			if !hb {
				prev = ar.conn
				continue
			}
			role, err := readPreamble(ar.conn, deadline)
			if err != nil {
				return fail(fmt.Errorf("reading connection preamble: %w", err))
			}
			switch {
			case role == preambleData && prev == nil:
				prev = ar.conn
			case role == preambleHeartbeat && hbPrev == nil:
				hbPrev = ar.conn
			default:
				return fail(fmt.Errorf("unexpected connection preamble %q", role))
			}
		case <-time.After(time.Until(deadline)):
			return fail(fmt.Errorf("timed out waiting for predecessor of rank %d", rank))
		}
	}

	t := &TCPRing{rank: rank, n: n, next: next, prev: prev}
	t.nextW = bufio.NewWriterSize(next, 1<<16)
	t.prevR = bufio.NewReaderSize(prev, 1<<16)
	t.opTO = cfg.OpTimeout
	if t.opTO == 0 {
		t.opTO = DefaultOpTimeout
	}
	t.maxFrame = cfg.MaxFrameBytes
	if t.maxFrame <= 0 {
		t.maxFrame = DefaultMaxFrameBytes
	}
	if hb {
		t.hbNext = &hbLink{conn: hbNext, peer: (rank + 1) % n}
		t.hbPrev = &hbLink{conn: hbPrev, peer: (rank - 1 + n) % n}
		t.hbInterval = cfg.Heartbeat
		t.hbMisses = cfg.HeartbeatMisses
		if t.hbMisses <= 0 {
			t.hbMisses = DefaultHeartbeatMisses
		}
		t.hbStop = make(chan struct{})
		go t.pingLoop()
		go t.watchLoop(t.hbPrev)
		go t.watchLoop(t.hbNext)
	}
	return t, nil
}

// dialRetry dials addr with jittered exponential backoff until it connects
// or the deadline passes. Jitter desynchronizes the retry storms of many
// ranks starting at once.
func dialRetry(addr string, deadline time.Time) (net.Conn, error) {
	backoff := 10 * time.Millisecond
	for {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			return c, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("dial %s: %w", addr, err)
		}
		sleep := backoff/2 + time.Duration(rand.Int63n(int64(backoff)))
		if remain := time.Until(deadline); sleep > remain {
			sleep = remain
		}
		time.Sleep(sleep)
		if backoff < 500*time.Millisecond {
			backoff *= 2
		}
	}
}

func writePreamble(c net.Conn, role byte, deadline time.Time) error {
	if err := c.SetWriteDeadline(deadline); err != nil {
		return err
	}
	defer c.SetWriteDeadline(time.Time{})
	_, err := c.Write([]byte{role})
	return err
}

func readPreamble(c net.Conn, deadline time.Time) (byte, error) {
	if err := c.SetReadDeadline(deadline); err != nil {
		return 0, err
	}
	defer c.SetReadDeadline(time.Time{})
	var b [1]byte
	if _, err := c.Read(b[:]); err != nil {
		return 0, err
	}
	return b[0], nil
}

// pingLoop writes one byte to each heartbeat neighbor every interval. A
// write failure means the neighbor's socket reset — declare it dead rather
// than waiting for the read side to time out.
func (t *TCPRing) pingLoop() {
	ticker := time.NewTicker(t.hbInterval)
	defer ticker.Stop()
	for {
		select {
		case <-t.hbStop:
			return
		case <-ticker.C:
		}
		for _, link := range []*hbLink{t.hbNext, t.hbPrev} {
			if link.departed.Load() {
				continue
			}
			link.conn.SetWriteDeadline(time.Now().Add(t.hbInterval))
			if _, err := link.conn.Write([]byte{preambleHeartbeat}); err != nil {
				if !t.closed.Load() && !link.departed.Load() {
					t.failPeer(link.peer, fmt.Errorf("heartbeat write: %w", err))
				}
				return
			}
			telemetry.Default.Add(telemetry.CtrHeartbeatPings, 1)
		}
	}
}

// watchLoop reads pings from one heartbeat connection. hbMisses consecutive
// silent intervals, or a connection reset, declare the peer dead; a goodbye
// byte instead marks an orderly departure and ends the watch without
// declaring anything. Watching interval by interval (rather than one read
// with a window-sized deadline) keeps the same death timing — hbInterval ×
// hbMisses of total silence — while making each individual miss observable
// as a telemetry counter tick before the verdict lands.
func (t *TCPRing) watchLoop(link *hbLink) {
	buf := make([]byte, 64)
	misses := 0
	for {
		link.conn.SetReadDeadline(time.Now().Add(t.hbInterval))
		n, err := link.conn.Read(buf)
		if n > 0 {
			misses = 0
		}
		for _, b := range buf[:n] {
			if b == hbBye {
				link.departed.Store(true)
				link.conn.Close()
				return
			}
		}
		if err == nil {
			continue
		}
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			misses++
			if !t.closed.Load() && !link.departed.Load() {
				telemetry.Default.Add(telemetry.CtrHeartbeatMisses, 1)
			}
			if misses < t.hbMisses {
				continue
			}
			err = fmt.Errorf("silent for %d intervals: %w", misses, err)
		}
		if !t.closed.Load() && !link.departed.Load() {
			t.failPeer(link.peer, fmt.Errorf("heartbeat silent/reset: %w", err))
		} else {
			link.conn.Close()
		}
		return
	}
}

// failPeer records the first liveness failure as a typed *Error wrapping
// ErrPeerDead and closes every connection: pending frame ops fail
// immediately instead of running out their OpTimeout, and the teardown
// cascades the death announcement to the other neighbor.
func (t *TCPRing) failPeer(peer int, cause error) {
	t.peerMu.Lock()
	first := t.peerErr == nil
	if first {
		t.peerErr = &Error{
			Rank: t.rank,
			Op:   OpHeartbeat,
			Step: t.step.Load(),
			Err:  fmt.Errorf("ring neighbor rank %d: %w (%v)", peer, ErrPeerDead, cause),
		}
	}
	t.peerMu.Unlock()
	if first {
		telemetry.Default.Add(telemetry.CtrPeerDeaths, 1)
		telemetry.Default.Mark("peer_dead:rank"+strconv.Itoa(peer), t.rank)
	}
	t.next.Close()
	t.prev.Close()
	if t.hbNext != nil {
		t.hbNext.conn.Close()
	}
	if t.hbPrev != nil {
		t.hbPrev.conn.Close()
	}
}

// livenessErr returns the recorded peer-death error, if any.
func (t *TCPRing) livenessErr() error {
	t.peerMu.Lock()
	defer t.peerMu.Unlock()
	return t.peerErr
}

// frameErr maps a raw frame-op failure to the liveness error when one is
// recorded: the interesting fact is that the neighbor died, not that the
// locally-closed socket reported "use of closed connection".
func (t *TCPRing) frameErr(err error) error {
	if err == nil {
		return nil
	}
	if le := t.livenessErr(); le != nil {
		return le
	}
	// A frame failing under an expired op context is the context's doing
	// (beginOp pokes the socket deadlines on cancellation): surface the
	// context error so errors.Is(err, context.Canceled/DeadlineExceeded)
	// works at the call site.
	if ce := t.ctxErr(); ce != nil {
		return fmt.Errorf("%w (%v)", ce, err)
	}
	// A frame op failing because the neighbor just died races the watchLoop's
	// verdict: the data and heartbeat sockets reset at the same instant. Give
	// the liveness layer one miss window to render its judgment so callers see
	// ErrPeerDead rather than a bare EOF/reset.
	if t.hbStop != nil && !t.closed.Load() {
		deadline := time.Now().Add(t.hbInterval * time.Duration(t.hbMisses))
		for time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
			if le := t.livenessErr(); le != nil {
				return le
			}
		}
	}
	return err
}

// Close tears down both ring connections (and the heartbeat channel, when
// enabled). Safe to call from another goroutine to reset a worker stuck
// mid-collective: its pending frame ops fail immediately.
func (t *TCPRing) Close() error {
	if !t.closed.CompareAndSwap(false, true) {
		return nil
	}
	if t.hbStop != nil {
		close(t.hbStop)
		window := t.hbInterval * time.Duration(t.hbMisses)
		sayGoodbye(t.hbNext, window)
		sayGoodbye(t.hbPrev, window)
	}
	err1 := t.next.Close()
	err2 := t.prev.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// Kill abruptly severs every ring and heartbeat connection without the
// goodbye handshake, reproducing the socket teardown of a process death:
// neighbors observe resets/silence with no preceding bye and declare this
// rank dead with ErrPeerDead. For fault-injection harnesses; an orderly
// shutdown is Close. A later Close is a no-op.
func (t *TCPRing) Kill() {
	if !t.closed.CompareAndSwap(false, true) {
		return
	}
	if t.hbStop != nil {
		close(t.hbStop)
	}
	t.next.Close()
	t.prev.Close()
	if t.hbNext != nil {
		t.hbNext.conn.Close()
	}
	if t.hbPrev != nil {
		t.hbPrev.conn.Close()
	}
}

// Hang freezes this rank without touching its sockets, reproducing a stalled
// process (SIGSTOP, a wedged disk, a pathological GC pause): connections stay
// open and ACKing, but pings stop, so neighbors' liveness layer must reach
// its verdict through the full miss window rather than a socket reset. For
// fault-injection harnesses; the abrupt socket teardown of a process death
// is Kill. A later Close is a no-op.
func (t *TCPRing) Hang() {
	if !t.closed.CompareAndSwap(false, true) {
		return
	}
	if t.hbStop != nil {
		close(t.hbStop)
	}
}

// sayGoodbye announces an orderly departure on one heartbeat link: the bye
// byte followed by a write-side FIN. The connection is fully closed only
// after the neighbor has had a whole miss window to read the announcement —
// an immediate close could reset the connection and destroy the bye in
// flight, turning a clean shutdown into a false death.
func sayGoodbye(link *hbLink, window time.Duration) {
	link.conn.SetWriteDeadline(time.Now().Add(window))
	link.conn.Write([]byte{hbBye})
	if tc, ok := link.conn.(*net.TCPConn); ok {
		tc.CloseWrite()
		time.AfterFunc(2*window, func() { tc.Close() })
	} else {
		link.conn.Close()
	}
}

// Rank returns this worker's rank.
func (t *TCPRing) Rank() int { return t.rank }

// Size returns the ring size.
func (t *TCPRing) Size() int { return t.n }

// MaxFrameBytes reports the configured incoming-frame bound.
func (t *TCPRing) MaxFrameBytes() int { return t.maxFrame }

// Step reports how many collective operations this handle has performed.
func (t *TCPRing) Step() int64 { return t.step.Load() }

// beginOp arms one collective op with a context: an already-expired ctx
// refuses to start, a ctx deadline caps every frame deadline inside the op
// (see frameDeadline), and a cancellation fires an immediate socket deadline
// so in-flight reads/writes unblock promptly instead of running out
// OpTimeout. The returned func disarms; callers must run it before the op
// returns.
func (t *TCPRing) beginOp(ctx context.Context) (func(), error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t.opCtx = ctx
	var stop func() bool
	if ctx.Done() != nil {
		stop = context.AfterFunc(ctx, func() {
			now := time.Now()
			t.next.SetDeadline(now)
			t.prev.SetDeadline(now)
		})
	}
	return func() {
		if stop != nil {
			stop()
		}
		t.opCtx = nil
	}, nil
}

// frameDeadline picks the effective deadline of one frame op: the per-frame
// OpTimeout, tightened by the op context's deadline when one is set. Zero
// means no deadline (OpTimeout disabled, no ctx deadline).
func (t *TCPRing) frameDeadline() time.Time {
	var dl time.Time
	if t.opTO > 0 {
		dl = time.Now().Add(t.opTO)
	}
	if t.opCtx != nil {
		if cd, ok := t.opCtx.Deadline(); ok && (dl.IsZero() || cd.Before(dl)) {
			dl = cd
		}
	}
	return dl
}

// ctxErr reports the in-flight op context's error, if any. Checked at frame
// boundaries so a cancelled op stops between frames even if the
// cancellation's socket-deadline poke raced a frame op re-arming the
// deadline. A context whose deadline has passed counts as expired even
// before its internal timer fires: frame deadlines are set to the ctx
// deadline, so a socket timeout can beat the context's own cancellation by
// a few microseconds, and that wire error must still surface as
// DeadlineExceeded.
func (t *TCPRing) ctxErr() error {
	if t.opCtx == nil {
		return nil
	}
	if err := t.opCtx.Err(); err != nil {
		return err
	}
	if dl, ok := t.opCtx.Deadline(); ok && !time.Now().Before(dl) {
		return context.DeadlineExceeded
	}
	return nil
}

// AllreduceF32Ctx is AllreduceF32 bounded by ctx (see beginOp).
func (t *TCPRing) AllreduceF32Ctx(ctx context.Context, x []float32) error {
	end, err := t.beginOp(ctx)
	if err != nil {
		return wrapErr(t.rank, OpAllreduce, t.step.Load(), err)
	}
	defer end()
	return t.AllreduceF32(x)
}

// AllgatherBytesCtx is AllgatherBytes bounded by ctx (see beginOp).
func (t *TCPRing) AllgatherBytesCtx(ctx context.Context, b []byte) ([][]byte, error) {
	end, err := t.beginOp(ctx)
	if err != nil {
		return nil, wrapErr(t.rank, OpAllgather, t.step.Load(), err)
	}
	defer end()
	return t.AllgatherBytes(b)
}

// BroadcastBytesCtx is BroadcastBytes bounded by ctx (see beginOp).
func (t *TCPRing) BroadcastBytesCtx(ctx context.Context, b []byte, root int) ([]byte, error) {
	end, err := t.beginOp(ctx)
	if err != nil {
		return nil, wrapErr(t.rank, OpBroadcast, t.step.Load(), err)
	}
	defer end()
	return t.BroadcastBytes(b, root)
}

// BarrierCtx is Barrier bounded by ctx (see beginOp).
func (t *TCPRing) BarrierCtx(ctx context.Context) error {
	end, err := t.beginOp(ctx)
	if err != nil {
		return wrapErr(t.rank, OpBarrier, t.step.Load(), err)
	}
	defer end()
	return t.Barrier()
}

// sendFrame writes one length-prefixed frame to the successor under the
// per-op write deadline.
func (t *TCPRing) sendFrame(b []byte) error {
	if err := t.livenessErr(); err != nil {
		return err
	}
	if err := t.ctxErr(); err != nil {
		return err
	}
	if len(b) > t.maxFrame {
		return fmt.Errorf("%w: sending %d bytes > limit %d", ErrFrameTooLarge, len(b), t.maxFrame)
	}
	span := telemetry.Default.Start()
	if dl := t.frameDeadline(); !dl.IsZero() {
		if err := t.next.SetWriteDeadline(dl); err != nil {
			return t.frameErr(fmt.Errorf("set write deadline: %w", err))
		}
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := t.nextW.Write(hdr[:]); err != nil {
		return t.frameErr(err)
	}
	if _, err := t.nextW.Write(b); err != nil {
		return t.frameErr(err)
	}
	if err := t.frameErr(t.nextW.Flush()); err != nil {
		return err
	}
	telemetry.Default.Add(telemetry.CtrWireBytesSent, int64(4+len(b)))
	telemetry.Default.Observe(telemetry.PhaseWireSend, t.rank, telemetry.TIDWireSend, "", span)
	return nil
}

// recvFrame reads one length-prefixed frame from the predecessor under the
// per-op read deadline. A header announcing more than MaxFrameBytes is
// rejected before any body allocation: a corrupt or hostile 4-byte prefix
// must not be able to demand a multi-gigabyte buffer.
func (t *TCPRing) recvFrame() ([]byte, error) {
	if err := t.livenessErr(); err != nil {
		return nil, err
	}
	if err := t.ctxErr(); err != nil {
		return nil, err
	}
	span := telemetry.Default.Start()
	if dl := t.frameDeadline(); !dl.IsZero() {
		if err := t.prev.SetReadDeadline(dl); err != nil {
			return nil, t.frameErr(fmt.Errorf("set read deadline: %w", err))
		}
	}
	b, err := readFrame(t.prevR, t.maxFrame)
	if err != nil {
		return b, t.frameErr(err)
	}
	telemetry.Default.Add(telemetry.CtrWireBytesRecv, int64(4+len(b)))
	telemetry.Default.Observe(telemetry.PhaseWireRecv, t.rank, telemetry.TIDWireRecv, "", span)
	return b, nil
}

// readFrame decodes one length-prefixed frame from r, rejecting bodies
// larger than maxFrame without allocating them. It is the ring's frame codec,
// factored out so the fuzz harness can drive it with arbitrary byte streams.
func readFrame(r *bufio.Reader, maxFrame int) ([]byte, error) {
	var hdr [4]byte
	if _, err := ioReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if uint64(n) > uint64(maxFrame) {
		return nil, fmt.Errorf("%w: header claims %d bytes > limit %d", ErrFrameTooLarge, n, maxFrame)
	}
	buf := make([]byte, n)
	if _, err := ioReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// appendFrame encodes b as a length-prefixed frame onto dst; the inverse of
// readFrame, exposed for the codec fuzz harness.
func appendFrame(dst, b []byte) []byte {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(b)))
	dst = append(dst, hdr[:]...)
	return append(dst, b...)
}

// sendRecv overlaps a send to the successor with a receive from the
// predecessor, which is what keeps the ring deadlock-free for large frames.
func (t *TCPRing) sendRecv(out []byte) ([]byte, error) {
	errCh := make(chan error, 1)
	go func() { errCh <- t.sendFrame(out) }()
	in, rerr := t.recvFrame()
	serr := <-errCh
	if serr != nil {
		return nil, fmt.Errorf("ring send: %w", serr)
	}
	if rerr != nil {
		return nil, fmt.Errorf("ring recv: %w", rerr)
	}
	return in, nil
}

// AllreduceF32 performs ring allreduce: reduce-scatter then allgather.
func (t *TCPRing) AllreduceF32(x []float32) error {
	step := t.step.Add(1)
	telemetry.Default.Add(telemetry.CtrCollectiveOps, 1)
	n := t.n
	chunk := func(i int) (lo, hi int) {
		i = ((i % n) + n) % n
		lo = i * len(x) / n
		hi = (i + 1) * len(x) / n
		return
	}
	// Reduce-scatter: after n-1 steps, rank r holds the fully reduced chunk
	// (r+1) mod n.
	for s := 0; s < n-1; s++ {
		sendLo, sendHi := chunk(t.rank - s)
		recvLo, recvHi := chunk(t.rank - s - 1)
		in, err := t.sendRecv(f32ToBytes(x[sendLo:sendHi]))
		if err != nil {
			return wrapErr(t.rank, OpAllreduce, step, err)
		}
		recv := bytesToF32(in)
		if len(recv) != recvHi-recvLo {
			return wrapErr(t.rank, OpAllreduce, step, fmt.Errorf("allreduce chunk size mismatch"))
		}
		for i, v := range recv {
			x[recvLo+i] += v
		}
	}
	// Allgather of the reduced chunks.
	for s := 0; s < n-1; s++ {
		sendLo, sendHi := chunk(t.rank + 1 - s)
		recvLo, recvHi := chunk(t.rank - s)
		in, err := t.sendRecv(f32ToBytes(x[sendLo:sendHi]))
		if err != nil {
			return wrapErr(t.rank, OpAllreduce, step, err)
		}
		recv := bytesToF32(in)
		if len(recv) != recvHi-recvLo {
			return wrapErr(t.rank, OpAllreduce, step, fmt.Errorf("allgather chunk size mismatch"))
		}
		copy(x[recvLo:recvHi], recv)
	}
	return nil
}

// AllgatherBytes circulates payloads around the ring for n-1 steps.
func (t *TCPRing) AllgatherBytes(b []byte) ([][]byte, error) {
	step := t.step.Add(1)
	telemetry.Default.Add(telemetry.CtrCollectiveOps, 1)
	out := make([][]byte, t.n)
	out[t.rank] = b
	cur := b
	for s := 0; s < t.n-1; s++ {
		in, err := t.sendRecv(cur)
		if err != nil {
			return nil, wrapErr(t.rank, OpAllgather, step, err)
		}
		origin := ((t.rank-s-1)%t.n + t.n) % t.n
		out[origin] = in
		cur = in
	}
	return out, nil
}

// BroadcastBytes forwards root's payload around the ring.
func (t *TCPRing) BroadcastBytes(b []byte, root int) ([]byte, error) {
	step := t.step.Add(1)
	telemetry.Default.Add(telemetry.CtrCollectiveOps, 1)
	if root < 0 || root >= t.n {
		return nil, wrapErr(t.rank, OpBroadcast, step, fmt.Errorf("broadcast root %d out of range", root))
	}
	if t.rank == root {
		if err := t.sendFrame(b); err != nil {
			return nil, wrapErr(t.rank, OpBroadcast, step, err)
		}
		// Absorb the frame completing the loop.
		if _, err := t.recvFrame(); err != nil {
			return nil, wrapErr(t.rank, OpBroadcast, step, err)
		}
		return b, nil
	}
	in, err := t.recvFrame()
	if err != nil {
		return nil, wrapErr(t.rank, OpBroadcast, step, err)
	}
	if err := t.sendFrame(in); err != nil {
		return nil, wrapErr(t.rank, OpBroadcast, step, err)
	}
	return in, nil
}

// Barrier circulates an empty token twice so that completion implies every
// worker has entered.
func (t *TCPRing) Barrier() error {
	step := t.step.Add(1)
	telemetry.Default.Add(telemetry.CtrCollectiveOps, 1)
	for s := 0; s < 2; s++ {
		if _, err := t.sendRecv(nil); err != nil {
			return wrapErr(t.rank, OpBarrier, step, err)
		}
	}
	return nil
}

func ioReadFull(r *bufio.Reader, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := r.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func putF32(b []byte, v float32) {
	binary.LittleEndian.PutUint32(b, math.Float32bits(v))
}

func getF32(b []byte) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(b))
}
