package comm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math"
	"net"
	"time"
)

// TCPRing is a real network implementation of Collective over a TCP ring:
// worker i accepts a connection from worker i-1 and dials worker i+1
// (mod n). AllreduceF32 runs the bandwidth-optimal ring algorithm
// (reduce-scatter followed by allgather, 2(n-1) steps), which is the same
// algorithm whose cost model internal/simnet uses for throughput projection —
// so the simulated and real substrates agree on communication structure.
type TCPRing struct {
	rank, n int
	next    net.Conn // to rank+1
	prev    net.Conn // from rank-1
	nextW   *bufio.Writer
	prevR   *bufio.Reader
}

var _ Collective = (*TCPRing)(nil)

// DialTCPRing establishes the ring. addrs[i] is the listen address of rank i;
// every participant must call DialTCPRing concurrently. The timeout bounds
// the whole setup.
func DialTCPRing(rank int, addrs []string, timeout time.Duration) (*TCPRing, error) {
	n := len(addrs)
	if n < 2 {
		return nil, fmt.Errorf("comm: tcp ring needs >= 2 workers, got %d", n)
	}
	if rank < 0 || rank >= n {
		return nil, fmt.Errorf("comm: rank %d out of [0,%d)", rank, n)
	}
	ln, err := net.Listen("tcp", addrs[rank])
	if err != nil {
		return nil, fmt.Errorf("comm: listen %s: %w", addrs[rank], err)
	}
	defer ln.Close()

	type acceptResult struct {
		conn net.Conn
		err  error
	}
	acceptCh := make(chan acceptResult, 1)
	go func() {
		c, err := ln.Accept()
		acceptCh <- acceptResult{c, err}
	}()

	// Dial the successor with retries until its listener is up.
	deadline := time.Now().Add(timeout)
	var next net.Conn
	for {
		next, err = net.DialTimeout("tcp", addrs[(rank+1)%n], time.Second)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("comm: dial %s: %w", addrs[(rank+1)%n], err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	select {
	case ar := <-acceptCh:
		if ar.err != nil {
			next.Close()
			return nil, fmt.Errorf("comm: accept: %w", ar.err)
		}
		r := &TCPRing{rank: rank, n: n, next: next, prev: ar.conn}
		r.nextW = bufio.NewWriterSize(next, 1<<16)
		r.prevR = bufio.NewReaderSize(ar.conn, 1<<16)
		return r, nil
	case <-time.After(time.Until(deadline)):
		next.Close()
		return nil, fmt.Errorf("comm: timed out waiting for predecessor of rank %d", rank)
	}
}

// Close tears down both ring connections.
func (t *TCPRing) Close() error {
	err1 := t.next.Close()
	err2 := t.prev.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// Rank returns this worker's rank.
func (t *TCPRing) Rank() int { return t.rank }

// Size returns the ring size.
func (t *TCPRing) Size() int { return t.n }

// sendFrame writes one length-prefixed frame to the successor.
func (t *TCPRing) sendFrame(b []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := t.nextW.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := t.nextW.Write(b); err != nil {
		return err
	}
	return t.nextW.Flush()
}

// recvFrame reads one length-prefixed frame from the predecessor.
func (t *TCPRing) recvFrame() ([]byte, error) {
	var hdr [4]byte
	if _, err := ioReadFull(t.prevR, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	buf := make([]byte, n)
	if _, err := ioReadFull(t.prevR, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// sendRecv overlaps a send to the successor with a receive from the
// predecessor, which is what keeps the ring deadlock-free for large frames.
func (t *TCPRing) sendRecv(out []byte) ([]byte, error) {
	errCh := make(chan error, 1)
	go func() { errCh <- t.sendFrame(out) }()
	in, rerr := t.recvFrame()
	serr := <-errCh
	if serr != nil {
		return nil, fmt.Errorf("comm: ring send: %w", serr)
	}
	if rerr != nil {
		return nil, fmt.Errorf("comm: ring recv: %w", rerr)
	}
	return in, nil
}

// AllreduceF32 performs ring allreduce: reduce-scatter then allgather.
func (t *TCPRing) AllreduceF32(x []float32) error {
	n := t.n
	chunk := func(i int) (lo, hi int) {
		i = ((i % n) + n) % n
		lo = i * len(x) / n
		hi = (i + 1) * len(x) / n
		return
	}
	// Reduce-scatter: after n-1 steps, rank r holds the fully reduced chunk
	// (r+1) mod n.
	for s := 0; s < n-1; s++ {
		sendLo, sendHi := chunk(t.rank - s)
		recvLo, recvHi := chunk(t.rank - s - 1)
		in, err := t.sendRecv(f32ToBytes(x[sendLo:sendHi]))
		if err != nil {
			return err
		}
		recv := bytesToF32(in)
		if len(recv) != recvHi-recvLo {
			return fmt.Errorf("comm: allreduce chunk size mismatch")
		}
		for i, v := range recv {
			x[recvLo+i] += v
		}
	}
	// Allgather of the reduced chunks.
	for s := 0; s < n-1; s++ {
		sendLo, sendHi := chunk(t.rank + 1 - s)
		recvLo, recvHi := chunk(t.rank - s)
		in, err := t.sendRecv(f32ToBytes(x[sendLo:sendHi]))
		if err != nil {
			return err
		}
		recv := bytesToF32(in)
		if len(recv) != recvHi-recvLo {
			return fmt.Errorf("comm: allgather chunk size mismatch")
		}
		copy(x[recvLo:recvHi], recv)
	}
	return nil
}

// AllgatherBytes circulates payloads around the ring for n-1 steps.
func (t *TCPRing) AllgatherBytes(b []byte) ([][]byte, error) {
	out := make([][]byte, t.n)
	out[t.rank] = b
	cur := b
	for s := 0; s < t.n-1; s++ {
		in, err := t.sendRecv(cur)
		if err != nil {
			return nil, err
		}
		origin := ((t.rank-s-1)%t.n + t.n) % t.n
		out[origin] = in
		cur = in
	}
	return out, nil
}

// BroadcastBytes forwards root's payload around the ring.
func (t *TCPRing) BroadcastBytes(b []byte, root int) ([]byte, error) {
	if root < 0 || root >= t.n {
		return nil, fmt.Errorf("comm: broadcast root %d out of range", root)
	}
	if t.rank == root {
		if err := t.sendFrame(b); err != nil {
			return nil, err
		}
		// Absorb the frame completing the loop.
		if _, err := t.recvFrame(); err != nil {
			return nil, err
		}
		return b, nil
	}
	in, err := t.recvFrame()
	if err != nil {
		return nil, err
	}
	if err := t.sendFrame(in); err != nil {
		return nil, err
	}
	return in, nil
}

// Barrier circulates an empty token twice so that completion implies every
// worker has entered.
func (t *TCPRing) Barrier() error {
	for s := 0; s < 2; s++ {
		if _, err := t.sendRecv(nil); err != nil {
			return err
		}
	}
	return nil
}

func ioReadFull(r *bufio.Reader, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := r.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func putF32(b []byte, v float32) {
	binary.LittleEndian.PutUint32(b, math.Float32bits(v))
}

func getF32(b []byte) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(b))
}
