package comm

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Fused-payload framing: the wire format the engine's tensor-fusion layer
// uses to carry one bucket's per-tensor payloads in a single collective
// round. The frame is transport-agnostic — it rides inside an
// AllgatherBytes payload on the in-process hub exactly as on the TCP ring —
// and deliberately minimal:
//
//	u32 count | u32 len_0 ... u32 len_{count-1} | payload_0 ... payload_{count-1}
//
// All integers are little-endian. Zero-length parts are legal (a compressor
// may emit an empty payload for an all-zero tensor). SplitFused returns
// subslices of the input — no copying — because the engine immediately hands
// each part to a per-tensor decoder that treats it as read-only.
//
// Decoding is hostile-input safe: the header is validated against the bytes
// actually present before any allocation is sized from it, so a corrupt or
// adversarial frame can neither over-allocate nor panic (see FuzzSplitFused).

// ErrBadFusedFrame is wrapped by every SplitFused failure: short header,
// part count or lengths inconsistent with the bytes present, or trailing
// garbage after the last part.
var ErrBadFusedFrame = errors.New("comm: malformed fused frame")

// FusedOverhead returns the framing overhead in bytes of a fused frame
// carrying n parts (the header: count word plus one length word per part).
func FusedOverhead(n int) int { return 4 + 4*n }

// FusedSize returns the exact encoded size of a fused frame carrying parts.
func FusedSize(parts [][]byte) int {
	n := FusedOverhead(len(parts))
	for _, p := range parts {
		n += len(p)
	}
	return n
}

// AppendFused appends the fused frame for parts to dst and returns the
// extended slice. Pass nil dst to allocate exactly; pass a reused buffer to
// amortize.
func AppendFused(dst []byte, parts [][]byte) []byte {
	if need := len(dst) + FusedSize(parts); cap(dst) < need {
		grown := make([]byte, len(dst), need)
		copy(grown, dst)
		dst = grown
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(parts)))
	for _, p := range parts {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(p)))
	}
	for _, p := range parts {
		dst = append(dst, p...)
	}
	return dst
}

// SplitFused parses a fused frame and returns its parts as subslices of b
// (zero-copy; the parts alias b). Every structural violation — truncated
// header, a part count the frame cannot hold, lengths exceeding the bytes
// present, or trailing bytes after the last part — returns an error wrapping
// ErrBadFusedFrame. When want >= 0 the part count must equal want exactly;
// the engine knows its bucket sizes a priori, so a peer disagreeing on the
// count is a protocol violation, not a recoverable layout.
func SplitFused(b []byte, want int) ([][]byte, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the count header", ErrBadFusedFrame, len(b))
	}
	count := binary.LittleEndian.Uint32(b)
	// Each declared part costs at least its 4-byte length word, so a count
	// beyond (len(b)-4)/4 cannot be honest; reject before allocating for it.
	if uint64(count) > uint64(len(b)-4)/4 {
		return nil, fmt.Errorf("%w: count %d exceeds what %d bytes can frame", ErrBadFusedFrame, count, len(b))
	}
	if want >= 0 && int(count) != want {
		return nil, fmt.Errorf("%w: frame carries %d parts, want %d", ErrBadFusedFrame, count, want)
	}
	n := int(count)
	head := 4 + 4*n
	body := b[head:]
	var total uint64
	for i := 0; i < n; i++ {
		total += uint64(binary.LittleEndian.Uint32(b[4+4*i:]))
	}
	if total != uint64(len(body)) {
		return nil, fmt.Errorf("%w: parts declare %d payload bytes, frame carries %d", ErrBadFusedFrame, total, len(body))
	}
	parts := make([][]byte, n)
	off := 0
	for i := 0; i < n; i++ {
		ln := int(binary.LittleEndian.Uint32(b[4+4*i:]))
		parts[i] = body[off : off+ln : off+ln]
		off += ln
	}
	return parts, nil
}
