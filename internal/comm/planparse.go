package comm

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParsePlan builds a fault Plan from a compact command-line spec, so chaos
// runs can be described on a flag:
//
//	kind[:key=val[,key=val...]][;kind...]
//
// Kinds: delay, drop, corrupt, reset, stall. Keys: rank (int or "*", default
// any), op (allreduce, allgather, broadcast, barrier, or "*"), from/to (step
// window, to=0 open-ended), prob (0..1), delay (Go duration, for delay/stall).
// Examples:
//
//	drop:rank=1,op=allgather,from=10,to=10
//	corrupt:rank=0,op=allgather,prob=0.2;delay:delay=2ms,prob=0.5
func ParsePlan(spec string, seed uint64) (Plan, error) {
	plan := Plan{Seed: seed}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kindStr, rest, _ := strings.Cut(part, ":")
		f := Fault{Rank: AnyRank}
		switch strings.TrimSpace(kindStr) {
		case "delay":
			f.Kind = FaultDelay
		case "drop":
			f.Kind = FaultDrop
		case "corrupt":
			f.Kind = FaultCorrupt
		case "reset":
			f.Kind = FaultReset
		case "stall":
			f.Kind = FaultStall
		default:
			return Plan{}, fmt.Errorf("comm: unknown fault kind %q (want delay|drop|corrupt|reset|stall)", kindStr)
		}
		if rest != "" {
			for _, kv := range strings.Split(rest, ",") {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					return Plan{}, fmt.Errorf("comm: fault option %q is not key=value", kv)
				}
				k, v = strings.TrimSpace(k), strings.TrimSpace(v)
				var err error
				switch k {
				case "rank":
					if v == "*" {
						f.Rank = AnyRank
					} else if f.Rank, err = strconv.Atoi(v); err != nil {
						return Plan{}, fmt.Errorf("comm: bad fault rank %q", v)
					}
				case "op":
					if f.Op, err = parseOp(v); err != nil {
						return Plan{}, err
					}
				case "from":
					if f.FromStep, err = strconv.ParseInt(v, 10, 64); err != nil {
						return Plan{}, fmt.Errorf("comm: bad fault from-step %q", v)
					}
				case "to":
					if f.ToStep, err = strconv.ParseInt(v, 10, 64); err != nil {
						return Plan{}, fmt.Errorf("comm: bad fault to-step %q", v)
					}
				case "prob":
					if f.Prob, err = strconv.ParseFloat(v, 64); err != nil || f.Prob < 0 || f.Prob > 1 {
						return Plan{}, fmt.Errorf("comm: bad fault probability %q (want 0..1)", v)
					}
				case "delay":
					if f.Delay, err = time.ParseDuration(v); err != nil {
						return Plan{}, fmt.Errorf("comm: bad fault delay %q: %v", v, err)
					}
				default:
					return Plan{}, fmt.Errorf("comm: unknown fault option %q", k)
				}
			}
		}
		plan.Faults = append(plan.Faults, f)
	}
	return plan, nil
}

func parseOp(v string) (Op, error) {
	switch v {
	case "*", "any", "":
		return "", nil
	case "allreduce":
		return OpAllreduce, nil
	case "allgather":
		return OpAllgather, nil
	case "broadcast":
		return OpBroadcast, nil
	case "barrier":
		return OpBarrier, nil
	default:
		return "", fmt.Errorf("comm: unknown fault op %q", v)
	}
}
