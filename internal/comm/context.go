package comm

import (
	"context"
	"time"
)

// ContextCollective is the optional context-aware extension of Collective:
// every primitive gains a variant that honors ctx cancellation and deadlines.
// It is an extension interface rather than a change to Collective so existing
// implementations and wrappers keep compiling; callers reach it through the
// package-level dispatch helpers (AllreduceF32, AllgatherBytes, ...), which
// fall back to the plain methods — after a ctx.Err() gate — when the handle
// does not implement it.
//
// The lockstep contract is unchanged: a context expiring on one worker fails
// that worker's op, and the resulting group desync surfaces on the peers as
// transport errors. Contexts bound how long a worker waits; they do not make
// collectives unilaterally abortable.
type ContextCollective interface {
	Collective
	// AllreduceF32Ctx is AllreduceF32 bounded by ctx.
	AllreduceF32Ctx(ctx context.Context, x []float32) error
	// AllgatherBytesCtx is AllgatherBytes bounded by ctx.
	AllgatherBytesCtx(ctx context.Context, b []byte) ([][]byte, error)
	// BroadcastBytesCtx is BroadcastBytes bounded by ctx.
	BroadcastBytesCtx(ctx context.Context, b []byte, root int) ([]byte, error)
	// BarrierCtx is Barrier bounded by ctx.
	BarrierCtx(ctx context.Context) error
}

// AllreduceF32 dispatches a context-bounded allreduce: the ContextCollective
// fast path when c implements it, otherwise a ctx.Err() gate in front of the
// plain method (an already-expired context never starts the op; one expiring
// mid-op is then bounded by the transport's own timeouts).
func AllreduceF32(ctx context.Context, c Collective, x []float32) error {
	if cc, ok := c.(ContextCollective); ok {
		return cc.AllreduceF32Ctx(ctx, x)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return c.AllreduceF32(x)
}

// AllgatherBytes dispatches a context-bounded allgather (see AllreduceF32).
func AllgatherBytes(ctx context.Context, c Collective, b []byte) ([][]byte, error) {
	if cc, ok := c.(ContextCollective); ok {
		return cc.AllgatherBytesCtx(ctx, b)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return c.AllgatherBytes(b)
}

// BroadcastBytes dispatches a context-bounded broadcast (see AllreduceF32).
func BroadcastBytes(ctx context.Context, c Collective, b []byte, root int) ([]byte, error) {
	if cc, ok := c.(ContextCollective); ok {
		return cc.BroadcastBytesCtx(ctx, b, root)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return c.BroadcastBytes(b, root)
}

// Barrier dispatches a context-bounded barrier (see AllreduceF32).
func Barrier(ctx context.Context, c Collective) error {
	if cc, ok := c.(ContextCollective); ok {
		return cc.BarrierCtx(ctx)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return c.Barrier()
}

var _ ContextCollective = Serial{}

// AllreduceF32Ctx is the single-worker identity, gated on ctx.
func (Serial) AllreduceF32Ctx(ctx context.Context, x []float32) error { return ctx.Err() }

// AllgatherBytesCtx returns the worker's own payload, gated on ctx.
func (Serial) AllgatherBytesCtx(ctx context.Context, b []byte) ([][]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return [][]byte{b}, nil
}

// BroadcastBytesCtx returns the payload unchanged, gated on ctx.
func (Serial) BroadcastBytesCtx(ctx context.Context, b []byte, root int) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return b, nil
}

// BarrierCtx is a no-op, gated on ctx.
func (Serial) BarrierCtx(ctx context.Context) error { return ctx.Err() }

// timeoutColl bounds every collective op with a per-op timeout by deriving a
// context deadline around each call; see WithTimeout.
type timeoutColl struct {
	inner Collective
	d     time.Duration
}

var _ ContextCollective = (*timeoutColl)(nil)

// WithTimeout wraps a Collective so that every operation runs under a per-op
// deadline of d, delivered through the context layer: the declarative
// replacement for threading ad-hoc timeout knobs into each transport's
// config. Callers that pass their own context get the tighter of the two
// deadlines (context.WithTimeout composes). d <= 0 returns inner unchanged.
func WithTimeout(inner Collective, d time.Duration) Collective {
	if d <= 0 {
		return inner
	}
	return &timeoutColl{inner: inner, d: d}
}

func (t *timeoutColl) Rank() int { return t.inner.Rank() }
func (t *timeoutColl) Size() int { return t.inner.Size() }

// Unwrap exposes the wrapped collective to capability probes (AsReformer).
func (t *timeoutColl) Unwrap() Collective { return t.inner }

func (t *timeoutColl) AllreduceF32(x []float32) error {
	return t.AllreduceF32Ctx(context.Background(), x)
}

func (t *timeoutColl) AllgatherBytes(b []byte) ([][]byte, error) {
	return t.AllgatherBytesCtx(context.Background(), b)
}

func (t *timeoutColl) BroadcastBytes(b []byte, root int) ([]byte, error) {
	return t.BroadcastBytesCtx(context.Background(), b, root)
}

func (t *timeoutColl) Barrier() error { return t.BarrierCtx(context.Background()) }

func (t *timeoutColl) AllreduceF32Ctx(ctx context.Context, x []float32) error {
	ctx, cancel := context.WithTimeout(ctx, t.d)
	defer cancel()
	return AllreduceF32(ctx, t.inner, x)
}

func (t *timeoutColl) AllgatherBytesCtx(ctx context.Context, b []byte) ([][]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, t.d)
	defer cancel()
	return AllgatherBytes(ctx, t.inner, b)
}

func (t *timeoutColl) BroadcastBytesCtx(ctx context.Context, b []byte, root int) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, t.d)
	defer cancel()
	return BroadcastBytes(ctx, t.inner, b, root)
}

func (t *timeoutColl) BarrierCtx(ctx context.Context) error {
	ctx, cancel := context.WithTimeout(ctx, t.d)
	defer cancel()
	return Barrier(ctx, t.inner)
}
