package comm

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/fxrand"
	"repro/internal/telemetry"
	"repro/internal/telemetry/xrank"
)

// Reformer is implemented by collectives that can rebuild their group under a
// new generation after a failure: the in-process Hub (clearing abort poison at
// an all-ranks rendezvous) and the re-dialable TCP Ring. Reform is itself a
// synchronization point — every member of the group must call it, in the same
// position of its op sequence, before any member's call returns. It returns
// the generation the group reconvened under.
type Reformer interface {
	Reform() (uint64, error)
}

// Unwrapper is implemented by collective wrappers (Meter, Faulty, WithTimeout,
// Resilient) so capability probes can walk to the transport underneath.
type Unwrapper interface {
	Unwrap() Collective
}

// AsReformer walks a wrapper chain down to the first layer that can reform
// the group, if any.
func AsReformer(c Collective) (Reformer, bool) {
	for c != nil {
		if r, ok := c.(Reformer); ok {
			return r, true
		}
		u, ok := c.(Unwrapper)
		if !ok {
			return nil, false
		}
		c = u.Unwrap()
	}
	return nil, false
}

// RetryPolicy bounds the Resilient wrapper. The zero value picks the
// defaults noted on each field.
type RetryPolicy struct {
	// PerOp is the maximum attempts for one collective op, including the
	// first (default 3: the original try plus two retries).
	PerOp int
	// Budget is the total retries the handle may spend over its lifetime
	// (default 16). Exhausting it makes further transient failures fatal.
	Budget int
	// BaseBackoff is the delay before the first retry (default 5ms); each
	// subsequent retry doubles it, capped at MaxBackoff (default 250ms).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed drives the jitter stream (fxrand), so chaos runs back off in a
	// reproducible pattern. Mixed with the rank so ranks don't thunder in
	// phase.
	Seed uint64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.PerOp <= 0 {
		p.PerOp = 3
	}
	if p.Budget <= 0 {
		p.Budget = 16
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 5 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 250 * time.Millisecond
	}
	return p
}

// Resilient wraps a Collective with bounded in-place retry of transient
// failures (see Classify): per-op deadline expiries, reset connections, and
// injected chaos faults are reabsorbed with capped jittered backoff instead
// of escalating to the supervisor. Before each retry the wrapper reforms the
// group when the transport supports it — on the hub that rendezvous clears
// the abort poison a drop/reset fault left behind, so every rank's retry of
// the same lockstep op can succeed together.
//
// Retrying an op in place is sound only where an op failure is group-atomic
// (no rank completed it), which holds for the rendezvous-based hub. Ring
// allreduce is not atomic — a failing rank's last frame can complete a peer's
// op — so ring deployments lean on the trainer-level rejoin path instead and
// use Resilient only to absorb pre-op dial/timeout flakes.
//
// Retries never straddle a group-generation bump. If the group reforms
// between a failure and its retry (a rejoin heal, or an elastic shrink or
// grow committing a new membership), this handle's traffic is stamped with
// the old generation and the transport rejects it with ErrStaleGeneration —
// a fatal sentinel that dominates any transient indicator in the same chain
// (see Classify), so the failure surfaces immediately instead of being
// replayed into a group whose size, denominators, and op sequence have moved
// on. Crossing a generation is the trainer heal path's job: it re-syncs
// position and state before any further collective runs.
//
// Resilient preserves the handle contract: single-goroutine use, identical op
// sequences across ranks (retries happen inside the op, so the sequence the
// caller sees is unchanged).
type Resilient struct {
	inner   Collective
	pol     RetryPolicy
	rng     *fxrand.RNG
	spent   int // total retries consumed; single-goroutine per handle
	retries atomic.Int64
	reforms atomic.Int64
}

var _ ContextCollective = (*Resilient)(nil)

// NewResilient wraps inner with the given retry policy.
func NewResilient(inner Collective, pol RetryPolicy) *Resilient {
	pol = pol.withDefaults()
	return &Resilient{
		inner: inner,
		pol:   pol,
		rng:   fxrand.New(pol.Seed*0x9e3779b9 + uint64(inner.Rank()) + 1),
	}
}

// Rank forwards to the wrapped collective.
func (r *Resilient) Rank() int { return r.inner.Rank() }

// Size forwards to the wrapped collective.
func (r *Resilient) Size() int { return r.inner.Size() }

// Unwrap exposes the wrapped collective to capability probes.
func (r *Resilient) Unwrap() Collective { return r.inner }

// Retries reports the transient failures this handle has retried through.
func (r *Resilient) Retries() int64 { return r.retries.Load() }

// Reforms reports the group reforms this handle has driven before retries.
func (r *Resilient) Reforms() int64 { return r.reforms.Load() }

// Reform forwards to the wrapped transport's reform, so the trainer-level
// heal path reaches it through this wrapper too.
func (r *Resilient) Reform() (uint64, error) {
	rf, ok := AsReformer(r.inner)
	if !ok {
		return 0, wrapErr(r.Rank(), OpReform, 0, fmt.Errorf("transport cannot reform"))
	}
	return rf.Reform()
}

// retry runs call, absorbing transient failures within the policy's bounds.
func (r *Resilient) retry(ctx context.Context, call func() error) error {
	var err error
	for attempt := 1; ; attempt++ {
		if err = call(); err == nil || !IsTransient(err) {
			return err
		}
		if attempt >= r.pol.PerOp {
			return fmt.Errorf("%w: %d attempts: %w", ErrRetriesExhausted, attempt, err)
		}
		if r.spent >= r.pol.Budget {
			return fmt.Errorf("%w: handle retry budget (%d) spent: %w", ErrRetriesExhausted, r.pol.Budget, err)
		}
		r.spent++
		r.retries.Add(1)
		telemetry.Default.Add(telemetry.CtrCommRetries, 1)
		xrank.Default.RecordFault(r.Rank(), xrank.OpRetry, int64(attempt), xrank.FaultRetry)
		if err := r.sleep(ctx, r.backoff(attempt)); err != nil {
			return err
		}
		// Reform before retrying so the whole group reconverges on the same
		// op: on the hub every rank failed this op (rendezvous atomicity) and
		// every rank's Resilient reforms here, completing the rendezvous.
		if rf, ok := AsReformer(r.inner); ok {
			if _, err := rf.Reform(); err != nil {
				return err
			}
			r.reforms.Add(1)
		}
	}
}

// backoff computes the jittered, capped delay before retry #attempt: half
// deterministic ramp, half fxrand jitter, so ranks desynchronize
// reproducibly.
func (r *Resilient) backoff(attempt int) time.Duration {
	d := r.pol.BaseBackoff << (attempt - 1)
	if d > r.pol.MaxBackoff || d <= 0 {
		d = r.pol.MaxBackoff
	}
	return d/2 + time.Duration(r.rng.Int63()%int64(d/2+1))
}

func (r *Resilient) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// AllreduceF32 retries transiently failed allreduces. The input is snapshotted
// so each retry starts from the caller's original vector even on transports
// that reduce in place.
func (r *Resilient) AllreduceF32(x []float32) error {
	return r.AllreduceF32Ctx(context.Background(), x)
}

// AllreduceF32Ctx is AllreduceF32 bounded by ctx.
func (r *Resilient) AllreduceF32Ctx(ctx context.Context, x []float32) error {
	orig := append([]float32(nil), x...)
	first := true
	return r.retry(ctx, func() error {
		if !first {
			copy(x, orig)
		}
		first = false
		return AllreduceF32(ctx, r.inner, x)
	})
}

// AllgatherBytes retries transiently failed allgathers.
func (r *Resilient) AllgatherBytes(b []byte) ([][]byte, error) {
	return r.AllgatherBytesCtx(context.Background(), b)
}

// AllgatherBytesCtx is AllgatherBytes bounded by ctx.
func (r *Resilient) AllgatherBytesCtx(ctx context.Context, b []byte) ([][]byte, error) {
	var out [][]byte
	err := r.retry(ctx, func() error {
		var err error
		out, err = AllgatherBytes(ctx, r.inner, b)
		return err
	})
	return out, err
}

// BroadcastBytes retries transiently failed broadcasts.
func (r *Resilient) BroadcastBytes(b []byte, root int) ([]byte, error) {
	return r.BroadcastBytesCtx(context.Background(), b, root)
}

// BroadcastBytesCtx is BroadcastBytes bounded by ctx.
func (r *Resilient) BroadcastBytesCtx(ctx context.Context, b []byte, root int) ([]byte, error) {
	var out []byte
	err := r.retry(ctx, func() error {
		var err error
		out, err = BroadcastBytes(ctx, r.inner, b, root)
		return err
	})
	return out, err
}

// Barrier retries transiently failed barriers.
func (r *Resilient) Barrier() error { return r.BarrierCtx(context.Background()) }

// BarrierCtx is Barrier bounded by ctx.
func (r *Resilient) BarrierCtx(ctx context.Context) error {
	return r.retry(ctx, func() error { return Barrier(ctx, r.inner) })
}
