package comm

import (
	"errors"
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestHubElasticShrink: rank 1 of 3 dies permanently; the survivors'
// ReformElastic commits world size 2 with a deterministic remap, collectives
// keep working at the new size, and the dead rank's handle is evicted.
func TestHubElasticShrink(t *testing.T) {
	hub := NewHub(3)
	w0, w1, w2 := hub.Worker(0), hub.Worker(1), hub.Worker(2)
	hub.Abort(fmt.Errorf("supervisor: rank 1 died: %w", ErrPeerDead))

	var wg sync.WaitGroup
	mems := make([]Membership, 3)
	errs := make([]error, 3)
	for i, w := range []*InProc{w0, w2} {
		wg.Add(1)
		go func(i int, w *InProc) {
			defer wg.Done()
			mems[i], errs[i] = w.ReformElastic(100 * time.Millisecond)
		}(i*2, w)
	}
	wg.Wait()
	for _, i := range []int{0, 2} {
		if errs[i] != nil {
			t.Fatalf("survivor %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(mems[i].Members, []int{0, 2}) {
			t.Fatalf("survivor %d members = %v, want [0 2]", i, mems[i].Members)
		}
		if !reflect.DeepEqual(mems[i].Lost, []int{1}) {
			t.Fatalf("survivor %d lost = %v, want [1]", i, mems[i].Lost)
		}
	}
	if mems[0].Rank != 0 || mems[2].Rank != 1 {
		t.Fatalf("remap = %d,%d, want 0,1", mems[0].Rank, mems[2].Rank)
	}
	if w0.Size() != 2 || w2.Rank() != 1 || w2.OriginalRank() != 2 {
		t.Fatalf("post-shrink view: size %d, w2 rank %d (orig %d)", w0.Size(), w2.Rank(), w2.OriginalRank())
	}

	// Collectives work at the new size with the new denominators.
	var sum0, sum2 []float32
	wg.Add(2)
	go func() { defer wg.Done(); sum0 = []float32{1}; errs[0] = w0.AllreduceF32(sum0) }()
	go func() { defer wg.Done(); sum2 = []float32{2}; errs[2] = w2.AllreduceF32(sum2) }()
	wg.Wait()
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("post-shrink allreduce: %v / %v", errs[0], errs[2])
	}
	if sum0[0] != 3 || sum2[0] != 3 {
		t.Fatalf("post-shrink sum = %v/%v, want 3", sum0[0], sum2[0])
	}

	// The evicted rank fails fatally, on collectives and reforms alike.
	if err := w1.Barrier(); !errors.Is(err, ErrEvicted) {
		t.Fatalf("evicted barrier err = %v, want ErrEvicted", err)
	}
	if _, err := w1.Reform(); !errors.Is(err, ErrEvicted) {
		t.Fatalf("evicted reform err = %v, want ErrEvicted", err)
	}
	if IsTransient(fmt.Errorf("wrapped: %w", ErrEvicted)) {
		t.Fatal("ErrEvicted must classify as fatal")
	}
}

// TestHubElasticReformIntact: all members arrive within the deadline, so the
// elastic reform behaves exactly like a legacy reform — nobody shrinks.
func TestHubElasticReformIntact(t *testing.T) {
	hub := NewHub(2)
	hub.Abort(ErrPeerDead)
	var wg sync.WaitGroup
	mems := make([]Membership, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mems[i], errs[i] = hub.Worker(i).ReformElastic(5 * time.Second)
		}(i)
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatalf("rank %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(mems[i].Members, []int{0, 1}) || len(mems[i].Lost) != 0 {
			t.Fatalf("rank %d membership = %+v, want intact", i, mems[i])
		}
	}
}

// TestHubElasticGrow: after a shrink, a fresh worker registers, the members
// absorb it via ReformGrow, and the group is back at full size with original
// indices restored.
func TestHubElasticGrow(t *testing.T) {
	hub := NewHub(3)
	w0, w2 := hub.Worker(0), hub.Worker(2)
	hub.Abort(ErrPeerDead)
	var wg sync.WaitGroup
	for _, w := range []*InProc{w0, w2} {
		wg.Add(1)
		go func(w *InProc) { defer wg.Done(); w.ReformElastic(50 * time.Millisecond) }(w)
	}
	wg.Wait()

	j, err := hub.Join(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := w0.PendingJoins(); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("pending = %v, want [1]", got)
	}
	target := []int{0, 1, 2}
	mems := make([]Membership, 3)
	errs := make([]error, 3)
	wg.Add(3)
	go func() { defer wg.Done(); mems[0], errs[0] = w0.ReformGrow(target) }()
	go func() { defer wg.Done(); mems[2], errs[2] = w2.ReformGrow(target) }()
	go func() { defer wg.Done(); mems[1], errs[1] = j.JoinGroup(5 * time.Second) }()
	wg.Wait()
	for i := 0; i < 3; i++ {
		if errs[i] != nil {
			t.Fatalf("rank %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(mems[i].Members, []int{0, 1, 2}) {
			t.Fatalf("rank %d members = %v, want [0 1 2]", i, mems[i].Members)
		}
		if mems[i].Rank != i {
			t.Fatalf("rank %d current index = %d", i, mems[i].Rank)
		}
	}

	// The regrown group's collectives span all three again.
	sums := make([][]float32, 3)
	wg.Add(3)
	for i, w := range []*InProc{w0, j, w2} {
		go func(i int, w *InProc) {
			defer wg.Done()
			sums[i] = []float32{float32(i + 1)}
			errs[i] = w.AllreduceF32(sums[i])
		}(i, w)
	}
	wg.Wait()
	for i := 0; i < 3; i++ {
		if errs[i] != nil {
			t.Fatalf("rank %d: %v", i, errs[i])
		}
		if sums[i][0] != 6 {
			t.Fatalf("rank %d sum = %v, want 6", i, sums[i][0])
		}
	}
}

// TestHubLegacyReformTimeoutUnchanged: the legacy Reform keeps its strict
// semantics — a missing rank times the rendezvous out with ErrPeerDead, no
// shrink happens, and the hub stays poisoned.
func TestHubLegacyReformTimeoutUnchanged(t *testing.T) {
	hub := NewHub(2)
	hub.SetReformTimeout(50 * time.Millisecond)
	hub.Abort(ErrPeerDead)
	_, err := hub.Worker(0).Reform()
	if !errors.Is(err, ErrPeerDead) {
		t.Fatalf("err = %v, want ErrPeerDead", err)
	}
	if hub.size() != 2 {
		t.Fatalf("legacy timeout shrank the hub to %d", hub.size())
	}
}

// TestMembersCodecRoundTrip covers the wire codec the join handshake uses.
func TestMembersCodecRoundTrip(t *testing.T) {
	for _, members := range [][]int{{0}, {0, 1, 2}, {1, 5, 4095}} {
		got, err := decodeMembers(encodeMembers(members))
		if err != nil {
			t.Fatalf("%v: %v", members, err)
		}
		if !reflect.DeepEqual(got, members) {
			t.Fatalf("round trip %v -> %v", members, got)
		}
	}
	for name, b := range map[string][]byte{
		"short header": {1, 2},
		"zero count":   encodeMembers(nil),
		"truncated":    encodeMembers([]int{0, 1})[:7],
		"unsorted":     {0, 0, 0, 2, 0, 0, 0, 5, 0, 0, 0, 3},
		"huge count":   {0, 1, 0, 0},
	} {
		if _, err := decodeMembers(b); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
	if membershipDigest([]int{0, 1, 2}) == membershipDigest([]int{0, 2}) {
		t.Fatal("digest collision between different member sets")
	}
	if membershipDigest(nil) == 0 {
		t.Fatal("digest must be nonzero")
	}
}

// TestElasticRingShrinkAndGrow drives the full TCP elastic lifecycle on
// loopback: 3 ranks form, rank 1 is killed (machine loss), the survivors
// shrink to 2 and allreduce at the new size; then a fresh worker joins and a
// grow restores world size 3.
func TestElasticRingShrinkAndGrow(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback ring lifecycle")
	}
	addrs := make([]string, 3)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	cfg := func(rank int) RingConfig {
		return RingConfig{
			Rank: rank, Addrs: addrs,
			SetupTimeout: 20 * time.Second,
			OpTimeout:    10 * time.Second,
			Heartbeat:    25 * time.Millisecond,
			Seed:         7,
		}
	}
	rings := make([]*ElasticRing, 3)
	errs := make([]error, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rings[i], errs[i] = DialElasticRing(cfg(i))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("dial rank %d: %v", i, err)
		}
	}
	defer func() {
		for _, r := range rings {
			if r != nil {
				r.Kill()
			}
		}
	}()

	// Machine loss: rank 1's sockets, listener, and acceptor all vanish.
	rings[1].Kill()

	mems := make([]Membership, 3)
	wg.Add(2)
	for _, i := range []int{0, 2} {
		go func(i int) {
			defer wg.Done()
			mems[i], errs[i] = rings[i].ReformElastic(500 * time.Millisecond)
		}(i)
	}
	wg.Wait()
	for _, i := range []int{0, 2} {
		if errs[i] != nil {
			t.Fatalf("survivor %d shrink: %v", i, errs[i])
		}
		if !reflect.DeepEqual(mems[i].Members, []int{0, 2}) {
			t.Fatalf("survivor %d members = %v, want [0 2]", i, mems[i].Members)
		}
	}
	if rings[0].Rank() != 0 || rings[2].Rank() != 1 || rings[2].Size() != 2 {
		t.Fatalf("post-shrink view: rank0=%d rank2=%d size=%d",
			rings[0].Rank(), rings[2].Rank(), rings[2].Size())
	}
	sums := map[int][]float32{0: {1}, 2: {2}}
	wg.Add(2)
	for _, i := range []int{0, 2} {
		go func(i int) { defer wg.Done(); errs[i] = rings[i].AllreduceF32(sums[i]) }(i)
	}
	wg.Wait()
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("post-shrink allreduce: %v / %v", errs[0], errs[2])
	}
	if sums[0][0] != 3 || sums[2][0] != 3 {
		t.Fatalf("post-shrink sums = %v/%v, want 3", sums[0][0], sums[2][0])
	}

	// Grow back: a fresh incarnation of rank 1 joins. Its request lands on
	// one member's elastic acceptor; in training the step-boundary beacon
	// unions the pending sets across ranks, so here rank 0 waits for the
	// request and hands rank 2 the agreed absorb set out-of-band.
	var joined *ElasticRing
	var joinErr error
	agreed := make(chan []int, 1)
	wg.Add(3)
	go func() {
		defer wg.Done()
		joined, joinErr = JoinElasticRing(cfg(1), 20*time.Second)
	}()
	go func() {
		defer wg.Done()
		for len(rings[0].PendingJoins()) == 0 {
			time.Sleep(10 * time.Millisecond)
		}
		target := sortedUnion([]int{0, 2}, rings[0].PendingJoins())
		agreed <- target
		mems[0], errs[0] = rings[0].ReformGrow(target)
	}()
	go func() {
		defer wg.Done()
		mems[2], errs[2] = rings[2].ReformGrow(<-agreed)
	}()
	wg.Wait()
	if joinErr != nil {
		t.Fatalf("join: %v", joinErr)
	}
	rings[1] = joined
	for _, i := range []int{0, 2} {
		if errs[i] != nil {
			t.Fatalf("survivor %d grow: %v", i, errs[i])
		}
	}
	for i, r := range rings {
		if r.Size() != 3 || r.Rank() != i {
			t.Fatalf("post-grow rank %d: size=%d rank=%d", i, r.Size(), r.Rank())
		}
	}
	sums3 := [][]float32{{1}, {2}, {3}}
	wg.Add(3)
	for i := range rings {
		go func(i int) { defer wg.Done(); errs[i] = rings[i].AllreduceF32(sums3[i]) }(i)
	}
	wg.Wait()
	for i := range rings {
		if errs[i] != nil {
			t.Fatalf("post-grow allreduce rank %d: %v", i, errs[i])
		}
		if sums3[i][0] != 6 {
			t.Fatalf("post-grow sum rank %d = %v, want 6", i, sums3[i][0])
		}
	}
}
