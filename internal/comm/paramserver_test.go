package comm

import (
	"fmt"
	"sync"
	"testing"
)

func runPSGroup(t *testing.T, n int, fn func(w Collective) error) {
	t.Helper()
	hub := NewPSHub(n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = fn(hub.Worker(rank))
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

func TestPSAllreduce(t *testing.T) {
	const n = 4
	runPSGroup(t, n, func(w Collective) error {
		x := []float32{float32(w.Rank()), 2}
		if err := w.AllreduceF32(x); err != nil {
			return err
		}
		if x[0] != 6 || x[1] != 8 {
			return fmt.Errorf("ps allreduce got %v", x)
		}
		return nil
	})
}

func TestPSAllgather(t *testing.T) {
	const n = 3
	runPSGroup(t, n, func(w Collective) error {
		all, err := w.AllgatherBytes([]byte{byte(w.Rank() + 10)})
		if err != nil {
			return err
		}
		for rank := 0; rank < n; rank++ {
			if len(all[rank]) != 1 || all[rank][0] != byte(rank+10) {
				return fmt.Errorf("ps allgather got %v", all)
			}
		}
		return nil
	})
}

func TestPSBroadcastAndBarrier(t *testing.T) {
	const n = 4
	runPSGroup(t, n, func(w Collective) error {
		var payload []byte
		if w.Rank() == 3 {
			payload = []byte("srv")
		}
		got, err := w.BroadcastBytes(payload, 3)
		if err != nil {
			return err
		}
		if string(got) != "srv" {
			return fmt.Errorf("ps broadcast got %q", got)
		}
		return w.Barrier()
	})
}

func TestPSManyRounds(t *testing.T) {
	const n, rounds = 3, 500
	runPSGroup(t, n, func(w Collective) error {
		for k := 0; k < rounds; k++ {
			x := []float32{1}
			if err := w.AllreduceF32(x); err != nil {
				return err
			}
			if x[0] != n {
				return fmt.Errorf("round %d got %v", k, x[0])
			}
		}
		return nil
	})
}

func TestPSMatchesRingResults(t *testing.T) {
	// Both topologies must produce the same aggregates.
	const n = 4
	input := func(rank int) []float32 {
		return []float32{float32(rank) * 1.5, float32(rank * rank)}
	}
	ringOut := make([][]float32, n)
	runGroup(t, n, func(w Collective) error {
		x := input(w.Rank())
		if err := w.AllreduceF32(x); err != nil {
			return err
		}
		ringOut[w.Rank()] = x
		return nil
	})
	runPSGroup(t, n, func(w Collective) error {
		x := input(w.Rank())
		if err := w.AllreduceF32(x); err != nil {
			return err
		}
		for i := range x {
			if x[i] != ringOut[w.Rank()][i] {
				return fmt.Errorf("ps result %v != ring result %v", x, ringOut[w.Rank()])
			}
		}
		return nil
	})
}

func TestPSHubBadRankPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPSHub(2).Worker(5)
}
