package comm

import (
	"errors"
	"fmt"

	"repro/internal/telemetry/xrank"
)

// Op identifies the collective (or transport sub-) operation during which a
// communication failure occurred; it is carried by Error so callers can
// dispatch on what was being attempted, not just on the failure text.
type Op string

// Operation labels used in Error.Op.
const (
	OpDial      Op = "dial"
	OpAllreduce Op = "allreduce"
	OpAllgather Op = "allgather"
	OpBroadcast Op = "broadcast"
	OpBarrier   Op = "barrier"
	OpSend      Op = "send"
	OpRecv      Op = "recv"
	OpHeartbeat Op = "heartbeat"
	OpReform    Op = "reform"
)

// Sentinel causes recognizable with errors.Is across wrapping layers.
var (
	// ErrFrameTooLarge reports a length-prefixed frame whose header claims
	// more than the transport's configured MaxFrameBytes. The frame body is
	// never allocated or read; the connection must be considered corrupt.
	ErrFrameTooLarge = errors.New("comm: frame exceeds max frame bytes")

	// ErrInjected marks a failure manufactured by the Faulty wrapper; chaos
	// tests assert on it to separate injected faults from genuine bugs.
	ErrInjected = errors.New("comm: injected fault")

	// ErrAborted reports that the collective group was torn down (Hub.Abort
	// or a peer dropping out) while this worker was inside, or entering, a
	// round.
	ErrAborted = errors.New("comm: collective group aborted")

	// ErrPeerDead reports that the liveness layer declared a ring neighbor
	// dead: its heartbeat stream went silent past the configured deadline or
	// its connection reset. Unlike a per-op timeout (a stall — the peer may
	// merely be slow), ErrPeerDead means the process is gone and the group
	// must be reformed: either the self-healing rejoin path (grace.Config
	// Rejoin) or a supervisor restart-from-checkpoint.
	ErrPeerDead = errors.New("comm: peer dead")

	// ErrCorrupt reports a wire record that parsed but cannot be trusted: a
	// malformed generation handshake, an unrecognized preamble kind, or a
	// protocol frame whose contents contradict the transport's invariants.
	// Unlike a reset (the bytes never arrived), corruption means the peer —
	// or something between us — is speaking a different protocol, so the
	// connection is fatal, never retried.
	ErrCorrupt = errors.New("comm: corrupt protocol data")

	// ErrStaleGeneration reports traffic stamped with a group generation
	// older than this ring's: a leftover of a previous incarnation that was
	// reformed away. Stale traffic is rejected (never processed) so a
	// partitioned or zombie member can't split-brain the group.
	ErrStaleGeneration = errors.New("comm: stale group generation")

	// ErrRetriesExhausted reports that the Resilient wrapper gave up: the op
	// kept failing transiently past the per-op attempt cap or the handle's
	// total retry budget. It wraps the last transient failure.
	ErrRetriesExhausted = errors.New("comm: retries exhausted")

	// ErrEvicted reports that this rank was voted out of an elastic group: it
	// missed the rejoin deadline and the survivors committed a smaller world
	// size without it. Eviction is permanent for the handle — the group has
	// moved on, so no retry layer may resurrect it mid-op; a fresh worker
	// must present through the Joiner handshake instead.
	ErrEvicted = errors.New("comm: evicted from elastic group")
)

// Error is the typed failure every hardened Collective implementation wraps
// transport and protocol errors in: which rank observed it, during which
// operation, and at which step (the per-handle count of collective calls made
// so far, so lockstep groups can correlate failures across ranks).
type Error struct {
	Rank int
	Op   Op
	Step int64
	Err  error
}

// Error formats the failure with its rank/op/step coordinates.
func (e *Error) Error() string {
	return fmt.Sprintf("comm: rank %d %s (step %d): %v", e.Rank, e.Op, e.Step, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is / errors.As.
func (e *Error) Unwrap() error { return e.Err }

// wrapErr builds a typed Error unless err is nil or already typed (the
// innermost coordinates are the most precise ones, so they are preserved).
// Creating a typed Error is also the cross-rank plane's fault choke point:
// the innermost wrap records a fault event at the failing op's coordinates
// and arms a flight-recorder dump (rate-limited, so an abort storm across
// ranks yields one artifact).
func wrapErr(rank int, op Op, step int64, err error) error {
	if err == nil {
		return nil
	}
	var ce *Error
	if errors.As(err, &ce) {
		return err
	}
	e := &Error{Rank: rank, Op: op, Step: step, Err: err}
	code := int64(xrank.FaultError)
	if errors.Is(err, ErrPeerDead) {
		code = xrank.FaultPeerDead
	}
	xrank.Default.RecordFault(rank, xrank.OpCode(string(op)), step, code)
	xrank.Default.Flight("comm_"+string(op), e)
	return e
}
