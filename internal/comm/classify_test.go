package comm

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
	"testing"
	"time"
)

type timeoutErr struct{}

func (timeoutErr) Error() string   { return "synthetic timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

var _ net.Error = timeoutErr{}

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want Class
	}{
		{"nil", nil, ClassFatal},
		{"unknown", errors.New("novel failure"), ClassFatal},
		{"peer-dead", ErrPeerDead, ClassFatal},
		{"frame-too-large", ErrFrameTooLarge, ClassFatal},
		{"corrupt", ErrCorrupt, ClassFatal},
		{"stale-generation", ErrStaleGeneration, ClassFatal},
		{"retries-exhausted", ErrRetriesExhausted, ClassFatal},
		{"canceled", context.Canceled, ClassFatal},
		{"injected", ErrInjected, ClassTransient},
		{"aborted", ErrAborted, ClassTransient},
		{"deadline", context.DeadlineExceeded, ClassTransient},
		{"eof", io.EOF, ClassTransient},
		{"unexpected-eof", io.ErrUnexpectedEOF, ClassTransient},
		{"net-closed", net.ErrClosed, ClassTransient},
		{"econnreset", syscall.ECONNRESET, ClassTransient},
		{"econnrefused", syscall.ECONNREFUSED, ClassTransient},
		{"epipe", syscall.EPIPE, ClassTransient},
		{"econnaborted", syscall.ECONNABORTED, ClassTransient},
		{"net-timeout", timeoutErr{}, ClassTransient},
		// Wrapped in the typed Error and extra context, classification holds.
		{"wrapped-transient", wrapErr(1, OpAllreduce, 4, fmt.Errorf("x: %w", ErrInjected)), ClassTransient},
		{"wrapped-fatal", wrapErr(2, OpHeartbeat, 9, fmt.Errorf("x: %w", ErrPeerDead)), ClassFatal},
		// A peer death whose proximate symptom was a reset stays fatal: the
		// fatal sentinel dominates the transient one.
		{"peer-dead-over-reset", fmt.Errorf("%w (%w)", ErrPeerDead, syscall.ECONNRESET), ClassFatal},
		// An abort carrying an injected cause is still transient.
		{"aborted-injected", fmt.Errorf("%w: %w", ErrAborted, ErrInjected), ClassTransient},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("%s: Classify = %v, want %v", tc.name, got, tc.want)
		}
	}
	if !IsTransient(ErrInjected) || IsTransient(ErrPeerDead) {
		t.Error("IsTransient disagrees with Classify")
	}
	if ClassFatal.String() != "fatal" || ClassTransient.String() != "transient" {
		t.Errorf("Class.String: %q / %q", ClassFatal, ClassTransient)
	}
}

// TestSentinelRoundTrips: every sentinel must survive errors.Is through the
// typed *Error wrapper, extra fmt wrapping, and the WithTimeout and Faulty
// layers, and *Error coordinates must stay reachable with errors.As.
func TestSentinelRoundTrips(t *testing.T) {
	sentinels := []error{
		ErrFrameTooLarge, ErrInjected, ErrAborted, ErrPeerDead,
		ErrCorrupt, ErrStaleGeneration, ErrRetriesExhausted,
	}
	for _, s := range sentinels {
		err := wrapErr(1, OpAllgather, 7, fmt.Errorf("context: %w", s))
		if !errors.Is(err, s) {
			t.Errorf("sentinel %v lost through wrapErr", s)
		}
		var ce *Error
		if !errors.As(err, &ce) || ce.Rank != 1 || ce.Op != OpAllgather || ce.Step != 7 {
			t.Errorf("coordinates lost for %v: %v", s, err)
		}
		// Double wrapping preserves the innermost coordinates.
		rewrapped := wrapErr(2, OpBarrier, 9, err)
		var inner *Error
		if !errors.As(rewrapped, &inner) || inner.Rank != 1 || inner.Step != 7 {
			t.Errorf("rewrap clobbered innermost coordinates for %v", s)
		}
	}

	// Through a live Faulty+WithTimeout stack on an aborted hub: the injected
	// drop must surface ErrInjected AND ErrAborted on the victim.
	hub := NewHub(2)
	victim := NewFaulty(WithTimeout(hub.Worker(0), time.Second), Plan{Faults: []Fault{
		{Kind: FaultDrop, Rank: 0, Op: OpBarrier, FromStep: 1},
	}})
	err := victim.Barrier()
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("victim error %v should wrap ErrInjected", err)
	}
	peerErr := hub.Worker(1).Barrier()
	if !errors.Is(peerErr, ErrAborted) || !errors.Is(peerErr, ErrInjected) {
		t.Fatalf("peer error %v should wrap ErrAborted and the injected cause", peerErr)
	}
	if !IsTransient(err) || !IsTransient(peerErr) {
		t.Fatalf("injected drop should classify transient on both sides")
	}
}

// TestAsReformerWalksWrapperChain: the capability probe must reach the hub
// through every wrapper the trainers stack.
func TestAsReformerWalksWrapperChain(t *testing.T) {
	hub := NewHub(1)
	stacked := NewResilient(NewMeter(WithTimeout(NewFaulty(hub.Worker(0), Plan{}), time.Second)), RetryPolicy{})
	rf, ok := AsReformer(stacked)
	if !ok {
		t.Fatal("AsReformer failed to reach the hub through the wrapper chain")
	}
	gen, err := rf.Reform()
	if err != nil || gen != 1 {
		t.Fatalf("reform through chain: gen %d, err %v", gen, err)
	}
	if _, ok := AsReformer(Serial{}); ok {
		t.Fatal("Serial should not report reform capability")
	}
}
