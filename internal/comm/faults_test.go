package comm

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/fxrand"
)

// withDeadline fails the test if fn does not return within d — the chaos
// suite's guarantee that injected faults produce errors, not hangs.
func withDeadline(t *testing.T, d time.Duration, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatal("deadlocked: operation did not complete within deadline")
	}
}

// TestFaultyPassthroughBitwiseIdentical runs the same mixed op sequence over
// a raw hub and a fault-free Faulty-wrapped hub and requires bitwise equal
// results: wrapping must be a perfect no-op when no fault fires.
func TestFaultyPassthroughBitwiseIdentical(t *testing.T) {
	const n, rounds = 4, 50
	run := func(wrap bool) [][]float32 {
		hub := NewHub(n)
		results := make([][]float32, n)
		var wg sync.WaitGroup
		for rank := 0; rank < n; rank++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				var w Collective = hub.Worker(rank)
				if wrap {
					w = NewFaulty(w, Plan{Seed: 9, Faults: []Fault{
						// Present but never matching: wrong rank and closed window.
						{Kind: FaultDrop, Rank: n + 5},
						{Kind: FaultCorrupt, Rank: AnyRank, FromStep: 1 << 40},
					}})
				}
				r := fxrand.New(uint64(rank) + 1)
				acc := make([]float32, 64)
				for k := 0; k < rounds; k++ {
					x := make([]float32, 64)
					for i := range x {
						x[i] = r.NormFloat32()
					}
					if err := w.AllreduceF32(x); err != nil {
						panic(err)
					}
					all, err := w.AllgatherBytes([]byte{byte(rank), byte(k)})
					if err != nil {
						panic(err)
					}
					for _, p := range all {
						acc[int(p[0])] += float32(p[1])
					}
					for i := range x {
						acc[i] += x[i]
					}
					if err := w.Barrier(); err != nil {
						panic(err)
					}
				}
				results[rank] = acc
			}(rank)
		}
		wg.Wait()
		return results
	}
	raw := run(false)
	wrapped := run(true)
	for rank := range raw {
		for i := range raw[rank] {
			if raw[rank][i] != wrapped[rank][i] {
				t.Fatalf("rank %d diverges at %d: raw %v wrapped %v", rank, i, raw[rank][i], wrapped[rank][i])
			}
		}
	}
}

// TestFaultyDropYieldsTypedErrorsEverywhere injects a drop at one rank and
// requires every rank — the victim and its blocked peers — to come back with
// a typed *Error inside the deadline.
func TestFaultyDropYieldsTypedErrorsEverywhere(t *testing.T) {
	const n = 4
	hub := NewHub(n)
	errs := make([]error, n)
	withDeadline(t, 5*time.Second, func() {
		var wg sync.WaitGroup
		for rank := 0; rank < n; rank++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				w := NewFaulty(hub.Worker(rank), Plan{Faults: []Fault{
					{Kind: FaultDrop, Rank: 2, Op: OpAllreduce, FromStep: 3, ToStep: 3},
				}})
				for k := 0; k < 10; k++ {
					x := make([]float32, 8)
					if err := w.AllreduceF32(x); err != nil {
						errs[rank] = err
						return
					}
				}
			}(rank)
		}
		wg.Wait()
	})
	for rank, err := range errs {
		if err == nil {
			t.Fatalf("rank %d: no error despite injected drop", rank)
		}
		var ce *Error
		if !errors.As(err, &ce) {
			t.Fatalf("rank %d: error %v is not a typed *comm.Error", rank, err)
		}
		if ce.Op != OpAllreduce {
			t.Fatalf("rank %d: op = %s, want allreduce", rank, ce.Op)
		}
	}
	// The victim saw the injected sentinel; peers saw the group abort.
	if !errors.Is(errs[2], ErrInjected) {
		t.Fatalf("victim error %v should wrap ErrInjected", errs[2])
	}
	for _, rank := range []int{0, 1, 3} {
		if !errors.Is(errs[rank], ErrAborted) {
			t.Fatalf("peer rank %d error %v should wrap ErrAborted", rank, errs[rank])
		}
	}
}

func TestFaultyDelayAndStallSucceed(t *testing.T) {
	const n = 2
	hub := NewHub(n)
	counts := make([]FaultCounts, n)
	withDeadline(t, 5*time.Second, func() {
		var wg sync.WaitGroup
		for rank := 0; rank < n; rank++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				w := NewFaulty(hub.Worker(rank), Plan{Faults: []Fault{
					{Kind: FaultDelay, Rank: 0, Op: OpAllreduce},
					{Kind: FaultStall, Rank: 1, Op: OpAllgather, Delay: 2 * time.Millisecond},
				}})
				for k := 0; k < 3; k++ {
					x := []float32{1}
					if err := w.AllreduceF32(x); err != nil {
						panic(err)
					}
					if x[0] != n {
						panic(fmt.Sprintf("allreduce under delay got %v", x[0]))
					}
					if _, err := w.AllgatherBytes([]byte{byte(rank)}); err != nil {
						panic(err)
					}
				}
				counts[rank] = w.Counts()
			}(rank)
		}
		wg.Wait()
	})
	if counts[0].Delays != 3 || counts[1].Stalls != 3 {
		t.Fatalf("counts = %+v, want 3 delays at rank 0 and 3 stalls at rank 1", counts)
	}
	if counts[0].Total() != 3 || counts[1].Total() != 3 {
		t.Fatalf("unexpected extra faults: %+v", counts)
	}
}

// TestFaultyCorruptMutatesPayloadNotCaller checks corruption reaches the
// peers while the caller's own buffer stays untouched.
func TestFaultyCorruptMutatesPayloadNotCaller(t *testing.T) {
	const n = 2
	hub := NewHub(n)
	payload := bytes.Repeat([]byte{0xAA}, 256)
	orig := append([]byte(nil), payload...)
	var got []byte
	withDeadline(t, 5*time.Second, func() {
		var wg sync.WaitGroup
		for rank := 0; rank < n; rank++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				w := NewFaulty(hub.Worker(rank), Plan{Seed: 3, Faults: []Fault{
					{Kind: FaultCorrupt, Rank: 0, Op: OpAllgather},
				}})
				var b []byte
				if rank == 0 {
					b = payload
				} else {
					b = []byte{1}
				}
				all, err := w.AllgatherBytes(b)
				if err != nil {
					panic(err)
				}
				if rank == 1 {
					got = all[0]
				}
			}(rank)
		}
		wg.Wait()
	})
	if !bytes.Equal(payload, orig) {
		t.Fatal("corruption mutated the caller's buffer")
	}
	if bytes.Equal(got, orig) {
		t.Fatal("peer received an uncorrupted payload despite injected corruption")
	}
	if len(got) != len(orig) {
		t.Fatalf("corruption changed payload length %d -> %d", len(orig), len(got))
	}
}

func TestFaultPlanMatching(t *testing.T) {
	cases := []struct {
		name  string
		fault Fault
		rank  int
		op    Op
		step  int64
		want  bool
	}{
		{"any", Fault{Rank: AnyRank}, 3, OpAllgather, 7, true},
		{"rank match", Fault{Rank: 2}, 2, OpBarrier, 1, true},
		{"rank mismatch", Fault{Rank: 2}, 1, OpBarrier, 1, false},
		{"op match", Fault{Rank: AnyRank, Op: OpAllreduce}, 0, OpAllreduce, 1, true},
		{"op mismatch", Fault{Rank: AnyRank, Op: OpAllreduce}, 0, OpBarrier, 1, false},
		{"window inside", Fault{Rank: AnyRank, FromStep: 2, ToStep: 4}, 0, OpBarrier, 3, true},
		{"window before", Fault{Rank: AnyRank, FromStep: 2, ToStep: 4}, 0, OpBarrier, 1, false},
		{"window after", Fault{Rank: AnyRank, FromStep: 2, ToStep: 4}, 0, OpBarrier, 5, false},
		{"open window", Fault{Rank: AnyRank, FromStep: 2}, 0, OpBarrier, 1 << 30, true},
	}
	for _, c := range cases {
		if got := c.fault.matches(c.rank, c.op, c.step); got != c.want {
			t.Errorf("%s: matches = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestFaultyProbabilisticDeterminism: the same seed injects the same faults;
// a different seed (eventually) differs.
func TestFaultyProbabilisticDeterminism(t *testing.T) {
	run := func(seed uint64) []bool {
		hub := NewHub(1) // size-1 hub: ops complete immediately
		w := NewFaulty(hub.Worker(0), Plan{Seed: seed, Faults: []Fault{
			{Kind: FaultStall, Rank: AnyRank, Prob: 0.5, Delay: time.Microsecond},
		}})
		pattern := make([]bool, 64)
		for i := range pattern {
			before := w.Counts().Stalls
			if err := w.Barrier(); err != nil {
				t.Fatal(err)
			}
			pattern[i] = w.Counts().Stalls > before
		}
		return pattern
	}
	a1, a2, b := run(1), run(1), run(2)
	same12, same1b := true, true
	for i := range a1 {
		same12 = same12 && a1[i] == a2[i]
		same1b = same1b && a1[i] == b[i]
	}
	if !same12 {
		t.Fatal("same seed produced different injection patterns")
	}
	if same1b {
		t.Fatal("different seeds produced identical injection patterns (suspicious)")
	}
}

func TestHubAbortUnblocksWaiters(t *testing.T) {
	const n = 3
	hub := NewHub(n)
	errs := make([]error, n)
	withDeadline(t, 5*time.Second, func() {
		var wg sync.WaitGroup
		for rank := 0; rank < n-1; rank++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				errs[rank] = hub.Worker(rank).Barrier()
			}(rank)
		}
		time.Sleep(10 * time.Millisecond) // let them block
		hub.Abort(errors.New("boom"))
		wg.Wait()
	})
	for rank := 0; rank < n-1; rank++ {
		if !errors.Is(errs[rank], ErrAborted) {
			t.Fatalf("rank %d: %v should wrap ErrAborted", rank, errs[rank])
		}
	}
	// Late arrivals fail fast too.
	if err := hub.Worker(n - 1).Barrier(); !errors.Is(err, ErrAborted) {
		t.Fatalf("post-abort op returned %v", err)
	}
}
