package comm

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry"
	"repro/internal/telemetry/xrank"
)

// ElasticRing is the TCP counterpart of the Hub's elastic membership: a
// re-dialable ring (like Ring) that can reform at a smaller world size when
// a member is permanently gone, and absorb a fresh worker back later.
//
// The handle keeps one persistent listener on its own address across ring
// incarnations. Between setups a lightweight acceptor answers two extra
// handshake kinds on it: liveness probes (hsProbe — "what generation are you
// at?") and join requests (hsJoin — a fresh worker announcing itself, which
// is recorded as pending and answered with the current generation and member
// list). During a ring setup the listener is lent to the ordinary setup
// path, whose acceptSide answers probes too, so a census never mistakes a
// rank mid-setup for a dead one.
//
// ReformElastic runs the shrink protocol in three phases:
//
//  1. Full reform: attempt an intact reform at generation+1 with the rejoin
//     deadline as the setup budget. A transiently dead rank that respawned in
//     time completes this phase and nothing shrinks.
//  2. Census: probe every member's listener. A refused or silent address is
//     a permanent loss (its process — and so its listener — is gone).
//  3. Shrink: form the ring over the survivors at generation+2. The member
//     digest circulated during ring confirmation guarantees all survivors
//     agreed on the same set; a disagreement fails the attempt, the census
//     reruns, and the retry converges.
//
// The evicted rank, if it ever comes back, finds every handshake rejected at
// a generation ahead of its own and its collectives failing fatally — it
// must re-enter through JoinElasticRing.
//
// Like Ring, the handle is single-goroutine for collectives; ReformElastic
// and ReformGrow occupy the same slot in the lockstep op sequence on every
// member.
type ElasticRing struct {
	mu      sync.Mutex
	cfg     RingConfig // Addrs in original-rank space; Rank = original rank
	members []int      // current sorted member set (original ranks)
	lost    []int      // evicted by the most recent shrink
	cur     *TCPRing

	ln      net.Listener
	lnTok   chan struct{} // listener ownership token (cap 1)
	stop    chan struct{}
	stopped sync.Once
	wg      sync.WaitGroup

	pendMu  sync.Mutex
	pending map[int]bool // join requests observed by the acceptor
}

var _ Collective = (*ElasticRing)(nil)
var _ Reformer = (*ElasticRing)(nil)
var _ Elastic = (*ElasticRing)(nil)

// DialElasticRing establishes the initial full-world ring and starts the
// elastic acceptor. Heartbeats are required: eviction decisions ride on the
// liveness layer's generation handshake.
func DialElasticRing(cfg RingConfig) (*ElasticRing, error) {
	if cfg.Heartbeat <= 0 {
		return nil, fmt.Errorf("comm: elastic ring requires Heartbeat > 0")
	}
	if cfg.Listener != nil {
		return nil, fmt.Errorf("comm: elastic ring owns its listener; Listener must be nil")
	}
	ln, err := net.Listen("tcp", cfg.Addrs[cfg.Rank])
	if err != nil {
		return nil, wrapErr(cfg.Rank, OpDial, 0, fmt.Errorf("listen %s: %w", cfg.Addrs[cfg.Rank], err))
	}
	members := cfg.Members
	if members == nil {
		members = make([]int, len(cfg.Addrs))
		for i := range members {
			members[i] = i
		}
	}
	r := &ElasticRing{
		cfg:     cfg,
		members: append([]int(nil), members...),
		ln:      ln,
		lnTok:   make(chan struct{}, 1),
		stop:    make(chan struct{}),
		pending: make(map[int]bool),
	}
	r.lnTok <- struct{}{}
	dcfg := cfg
	dcfg.Listener = ln
	dcfg.Members = r.members
	ring, err := r.dialLocked(dcfg)
	if err != nil {
		ln.Close()
		return nil, err
	}
	r.cur = ring
	r.cfg.Generation = ring.Generation()
	r.wg.Add(1)
	go r.acceptorLoop()
	return r, nil
}

// JoinElasticRing enters an existing elastic group as a fresh worker: it
// announces itself to any live member (hsJoin), learns the current
// generation and member set, and then dials into the grow reform the
// members will initiate at their next join point. The call blocks up to
// wait; cfg.Rank is the joiner's original rank and cfg.Addrs the full
// world address table (the joiner's own address included).
func JoinElasticRing(cfg RingConfig, wait time.Duration) (*ElasticRing, error) {
	if cfg.Heartbeat <= 0 {
		return nil, fmt.Errorf("comm: elastic ring requires Heartbeat > 0")
	}
	ln, err := net.Listen("tcp", cfg.Addrs[cfg.Rank])
	if err != nil {
		return nil, wrapErr(cfg.Rank, OpDial, 0, fmt.Errorf("listen %s: %w", cfg.Addrs[cfg.Rank], err))
	}
	deadline := time.Now().Add(wait)
	for {
		gen, members, err := requestJoin(cfg, deadline)
		if err != nil {
			ln.Close()
			return nil, wrapErr(cfg.Rank, OpDial, 0, fmt.Errorf("elastic join: %w", err))
		}
		target := sortedUnion(members, []int{cfg.Rank})
		dcfg := cfg
		dcfg.Members = target
		dcfg.Generation = gen + 1
		dcfg.Listener = ln
		dcfg.SetupTimeout = time.Until(deadline)
		ring, err := DialTCPRingConfig(dcfg)
		if err == nil {
			r := &ElasticRing{
				cfg:     cfg,
				members: target,
				ln:      ln,
				lnTok:   make(chan struct{}, 1),
				stop:    make(chan struct{}),
				pending: make(map[int]bool),
				cur:     ring,
			}
			r.cfg.Generation = ring.Generation()
			r.lnTok <- struct{}{}
			r.wg.Add(1)
			go r.acceptorLoop()
			xrank.Default.SetGeneration(ring.Generation())
			xrank.Default.SetWorldSize(len(target))
			telemetry.Default.SetGauge("world_size", int64(len(target)))
			return r, nil
		}
		if time.Now().After(deadline) {
			ln.Close()
			return nil, wrapErr(cfg.Rank, OpDial, 0, fmt.Errorf("elastic join: not absorbed within %v: %w", wait, err))
		}
		// The group may have reformed (new generation or membership) while
		// we dialed; re-request and try again.
	}
}

// requestJoin announces the joiner to the first member that answers and
// returns the group's current generation and member list.
func requestJoin(cfg RingConfig, deadline time.Time) (uint64, []int, error) {
	var lastErr error = fmt.Errorf("no live member answered")
	for time.Now().Before(deadline) {
		for peer, addr := range cfg.Addrs {
			if peer == cfg.Rank {
				continue
			}
			gen, members, err := requestJoinOne(addr, cfg.Rank, deadline)
			if err != nil {
				lastErr = err
				continue
			}
			return gen, members, nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return 0, nil, fmt.Errorf("join request: %w", lastErr)
}

func requestJoinOne(addr string, rank int, deadline time.Time) (uint64, []int, error) {
	c, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return 0, nil, err
	}
	defer c.Close()
	if err := writeHandshake(c, hsJoin, uint64(rank), deadline); err != nil {
		return 0, nil, err
	}
	status, gen, err := readHandshakeReply(c, deadline)
	if err != nil {
		return 0, nil, err
	}
	if status != hsAccept {
		return 0, nil, fmt.Errorf("join rejected at generation %d", gen)
	}
	members, err := readMembers(c, deadline)
	if err != nil {
		return 0, nil, err
	}
	return gen, members, nil
}

// readMembers reads one encodeMembers blob with a bounded deadline.
func readMembers(c net.Conn, deadline time.Time) ([]int, error) {
	hsDeadline := time.Now().Add(2 * time.Second)
	if hsDeadline.After(deadline) {
		hsDeadline = deadline
	}
	if err := c.SetReadDeadline(hsDeadline); err != nil {
		return nil, err
	}
	defer c.SetReadDeadline(time.Time{})
	var hdr [4]byte
	if _, err := io.ReadFull(c, hdr[:]); err != nil {
		return nil, err
	}
	n := int(uint32(hdr[0])<<24 | uint32(hdr[1])<<16 | uint32(hdr[2])<<8 | uint32(hdr[3]))
	if n == 0 || n > maxMembers {
		return nil, fmt.Errorf("%w: member count %d out of [1,%d]", ErrCorrupt, n, maxMembers)
	}
	body := make([]byte, 4*n)
	if _, err := io.ReadFull(c, body); err != nil {
		return nil, err
	}
	return decodeMembers(append(hdr[:], body...))
}

// acceptorLoop answers probes and join requests on the persistent listener
// whenever a ring setup isn't borrowing it. Each iteration holds the
// listener token for at most one bounded accept.
func (r *ElasticRing) acceptorLoop() {
	defer r.wg.Done()
	tl, _ := r.ln.(*net.TCPListener)
	for {
		select {
		case <-r.stop:
			return
		case <-r.lnTok:
		}
		if tl != nil {
			tl.SetDeadline(time.Now().Add(150 * time.Millisecond))
		}
		c, err := r.ln.Accept()
		r.lnTok <- struct{}{}
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			select {
			case <-r.stop:
			default:
				// Listener broke outside Close/Kill; nothing to serve.
			}
			return
		}
		r.serveConn(c)
	}
}

// serveConn handles one between-setups connection on the elastic listener.
func (r *ElasticRing) serveConn(c net.Conn) {
	defer c.Close()
	deadline := time.Now().Add(2 * time.Second)
	role, payload, err := readHandshake(c, deadline)
	if err != nil {
		return
	}
	r.mu.Lock()
	gen := r.cfg.Generation
	members := append([]int(nil), r.members...)
	r.mu.Unlock()
	switch role {
	case hsProbe:
		writeHandshakeReply(c, hsAccept, gen, deadline)
	case hsJoin:
		rank := int(payload)
		if rank < 0 || rank > maxMembers || indexOf(members, rank) >= 0 {
			writeHandshakeReply(c, hsReject, gen, deadline)
			return
		}
		r.pendMu.Lock()
		r.pending[rank] = true
		r.pendMu.Unlock()
		if writeHandshakeReply(c, hsAccept, gen, deadline) != nil {
			return
		}
		c.SetWriteDeadline(deadline)
		c.Write(encodeMembers(members))
		c.SetWriteDeadline(time.Time{})
	default:
		// A data/heartbeat dialer reached us while no setup is running —
		// most likely a stale incarnation. Reject with our generation so it
		// adopts and converges.
		writeHandshakeReply(c, hsReject, gen, deadline)
	}
}

// dialLocked borrows the listener and runs one ring setup with it.
func (r *ElasticRing) dialLocked(cfg RingConfig) (*TCPRing, error) {
	<-r.lnTok
	defer func() { r.lnTok <- struct{}{} }()
	return DialTCPRingConfig(cfg)
}

// ring returns the current incarnation.
func (r *ElasticRing) ring() *TCPRing {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cur
}

// Rank returns this worker's current rank: its index in the member set.
func (r *ElasticRing) Rank() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return indexOf(r.members, r.cfg.Rank)
}

// OriginalRank returns the worker's lifetime identity.
func (r *ElasticRing) OriginalRank() int { return r.cfg.Rank }

// Size returns the current world size.
func (r *ElasticRing) Size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.members)
}

// Generation reports the current incarnation's group generation.
func (r *ElasticRing) Generation() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cfg.Generation
}

// Membership reports the current committed configuration.
func (r *ElasticRing) Membership() Membership {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Membership{
		Gen:     r.cfg.Generation,
		Members: append([]int(nil), r.members...),
		Rank:    indexOf(r.members, r.cfg.Rank),
		Lost:    append([]int(nil), r.lost...),
	}
}

// PendingJoins reports the original ranks whose join requests the acceptor
// has recorded, sorted ascending.
func (r *ElasticRing) PendingJoins() []int {
	r.pendMu.Lock()
	defer r.pendMu.Unlock()
	out := make([]int, 0, len(r.pending))
	for k := range r.pending {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Reform rebuilds the ring with the full current membership at the next
// generation (the legacy heal path: every member must come back).
func (r *ElasticRing) Reform() (uint64, error) {
	r.mu.Lock()
	old := r.cur
	members := append([]int(nil), r.members...)
	gen := r.cfg.Generation + 1
	r.mu.Unlock()
	old.Kill()
	if g := old.Generation(); g >= gen {
		gen = g + 1
	}
	dcfg := r.cfg
	dcfg.Members = members
	dcfg.Generation = gen
	dcfg.Listener = r.ln
	ring, err := r.dialLocked(dcfg)
	if err != nil {
		return 0, err
	}
	r.commit(ring, members, nil)
	telemetry.Default.Add(telemetry.CtrRingReconnects, 1)
	telemetry.Default.Add(telemetry.CtrGroupReforms, 1)
	xrank.Default.RecordFault(r.cfg.Rank, xrank.OpReform, 0, xrank.FaultReform)
	return ring.Generation(), nil
}

// ReformElastic runs the shrink protocol (see the type comment): intact
// reform within wait, else census + shrink-form over the survivors.
func (r *ElasticRing) ReformElastic(wait time.Duration) (Membership, error) {
	r.mu.Lock()
	old := r.cur
	members := append([]int(nil), r.members...)
	oldGen := r.cfg.Generation
	setupTO := r.cfg.SetupTimeout
	r.mu.Unlock()
	if setupTO <= 0 {
		setupTO = 30 * time.Second
	}
	old.Kill()
	if g := old.Generation(); g > oldGen {
		oldGen = g
	}

	// Phase 1: intact reform at generation+1, budgeted by the rejoin
	// deadline. A transiently lost rank that made it back joins here.
	dcfg := r.cfg
	dcfg.Members = members
	dcfg.Generation = oldGen + 1
	dcfg.SetupTimeout = wait
	dcfg.Listener = r.ln
	if ring, err := r.dialLocked(dcfg); err == nil {
		r.commit(ring, members, nil)
		telemetry.Default.Add(telemetry.CtrGroupReforms, 1)
		telemetry.Default.Add(telemetry.CtrRingReconnects, 1)
		xrank.Default.RecordFault(r.cfg.Rank, xrank.OpReform, 0, xrank.FaultReform)
		return r.Membership(), nil
	}

	// Phases 2+3: census, then shrink-form over the survivors. Retried —
	// with a fresh census each time — until the shrink budget runs out, so
	// overlapping reforms (digest mismatches) converge.
	deadline := time.Now().Add(2 * setupTO)
	for {
		survivors := r.census(members, oldGen)
		if len(survivors) < 2 {
			return Membership{}, wrapErr(r.cfg.Rank, OpReform, 0,
				fmt.Errorf("elastic shrink: %d of %d members reachable, ring needs 2: %w",
					len(survivors), len(members), ErrPeerDead))
		}
		dcfg.Members = survivors
		dcfg.Generation = oldGen + 2
		dcfg.SetupTimeout = setupTO
		ring, err := r.dialLocked(dcfg)
		if err == nil {
			var lost []int
			for _, m := range members {
				if indexOf(survivors, m) < 0 {
					lost = append(lost, m)
				}
			}
			r.commit(ring, survivors, lost)
			telemetry.Default.Add(telemetry.CtrGroupReforms, 1)
			telemetry.Default.Add(telemetry.CtrRingReconnects, 1)
			telemetry.Default.Add(telemetry.CtrElasticShrinks, 1)
			xrank.Default.SetWorldSize(len(survivors))
			telemetry.Default.SetGauge("world_size", int64(len(survivors)))
			xrank.Default.RecordFault(r.cfg.Rank, xrank.OpReform, 0, xrank.FaultReform)
			return r.Membership(), nil
		}
		if time.Now().After(deadline) {
			return Membership{}, wrapErr(r.cfg.Rank, OpReform, 0,
				fmt.Errorf("elastic shrink: no stable ring within %v: %w", 2*setupTO, err))
		}
	}
}

// ReformGrow rebuilds the ring over the agreed post-grow member set. All
// current members must pass the same set; the pending joiners it names dial
// into the same setup from JoinElasticRing.
func (r *ElasticRing) ReformGrow(members []int) (Membership, error) {
	r.mu.Lock()
	old := r.cur
	oldGen := r.cfg.Generation
	r.mu.Unlock()
	target := append([]int(nil), members...)
	sort.Ints(target)
	old.Kill()
	if g := old.Generation(); g > oldGen {
		oldGen = g
	}
	dcfg := r.cfg
	dcfg.Members = target
	dcfg.Generation = oldGen + 1
	dcfg.Listener = r.ln
	ring, err := r.dialLocked(dcfg)
	if err != nil {
		return Membership{}, wrapErr(r.cfg.Rank, OpReform, 0, fmt.Errorf("elastic grow: %w", err))
	}
	r.commit(ring, target, nil)
	r.pendMu.Lock()
	for _, m := range target {
		delete(r.pending, m)
	}
	r.pendMu.Unlock()
	telemetry.Default.Add(telemetry.CtrGroupReforms, 1)
	telemetry.Default.Add(telemetry.CtrRingReconnects, 1)
	telemetry.Default.Add(telemetry.CtrElasticGrows, 1)
	xrank.Default.SetWorldSize(len(target))
	telemetry.Default.SetGauge("world_size", int64(len(target)))
	xrank.Default.RecordFault(r.cfg.Rank, xrank.OpReform, 0, xrank.FaultReform)
	return r.Membership(), nil
}

// census probes every other member's listener and returns the reachable set
// (always including self), sorted.
func (r *ElasticRing) census(members []int, gen uint64) []int {
	alive := []int{r.cfg.Rank}
	for _, m := range members {
		if m == r.cfg.Rank {
			continue
		}
		if r.probe(r.cfg.Addrs[m], gen) {
			alive = append(alive, m)
		}
	}
	sort.Ints(alive)
	return alive
}

// probe sends one hsProbe to addr and reports whether anything answered.
// Any well-formed reply counts as life — a member mid-setup at a different
// generation is alive, just busy.
func (r *ElasticRing) probe(addr string, gen uint64) bool {
	deadline := time.Now().Add(time.Second)
	c, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return false
	}
	defer c.Close()
	if err := writeHandshake(c, hsProbe, gen, deadline); err != nil {
		return false
	}
	_, _, err = readHandshakeReply(c, deadline)
	return err == nil
}

// commit installs a new incarnation and membership.
func (r *ElasticRing) commit(ring *TCPRing, members, lost []int) {
	r.mu.Lock()
	r.cur = ring
	r.members = members
	r.lost = lost
	r.cfg.Generation = ring.Generation()
	r.mu.Unlock()
	xrank.Default.SetGeneration(ring.Generation())
}

// Close shuts the acceptor, the listener, and the current ring down
// gracefully.
func (r *ElasticRing) Close() error {
	r.stopped.Do(func() { close(r.stop) })
	r.ln.Close()
	r.wg.Wait()
	return r.ring().Close()
}

// Kill abruptly severs everything — ring sockets, listener, acceptor — the
// way a machine loss would. Peers' probes then find nothing listening, which
// is exactly the census's permanent-loss signal.
func (r *ElasticRing) Kill() {
	r.stopped.Do(func() { close(r.stop) })
	r.ln.Close()
	r.wg.Wait()
	r.ring().Kill()
}

// Hang freezes the current ring's collectives but leaves the listener
// answering probes: a wedged-but-alive process. A census will not evict it;
// only the full machine loss simulated by Kill does.
func (r *ElasticRing) Hang() { r.ring().Hang() }

// AllreduceF32 forwards to the current incarnation.
func (r *ElasticRing) AllreduceF32(x []float32) error { return r.ring().AllreduceF32(x) }

// AllgatherBytes forwards to the current incarnation.
func (r *ElasticRing) AllgatherBytes(b []byte) ([][]byte, error) { return r.ring().AllgatherBytes(b) }

// BroadcastBytes forwards to the current incarnation.
func (r *ElasticRing) BroadcastBytes(b []byte, root int) ([]byte, error) {
	return r.ring().BroadcastBytes(b, root)
}

// Barrier forwards to the current incarnation.
func (r *ElasticRing) Barrier() error { return r.ring().Barrier() }
