package comm

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/telemetry"
	"repro/internal/telemetry/xrank"
)

// Ring is the re-formable TCP collective: it owns a RingConfig and the
// current *TCPRing incarnation, and can tear the incarnation down and dial a
// fresh one at the next group generation when a member dies. It is what the
// self-healing trainer path runs on — survivors of a peer death call Reform
// (all of them, plus the respawned member dialing through DialRing), the
// group converges on generation g+1 via the handshake protocol, and stale
// connections from the old incarnation are refused.
//
// Collective calls follow the usual single-goroutine contract; Reform, Kill,
// Hang, and Close may race them from other goroutines (they synchronize on
// the incarnation pointer, and the op in flight fails with a typed error when
// its sockets die underneath it).
type Ring struct {
	mu  sync.Mutex
	cfg RingConfig
	cur *TCPRing
}

var _ ContextCollective = (*Ring)(nil)
var _ Reformer = (*Ring)(nil)

// DialRing establishes a re-formable ring. The generation protocol lives on
// the liveness layer, so cfg.Heartbeat must be positive. A respawned member
// may leave cfg.Generation at 0: setup discovers the group's actual
// generation through handshake rejections and adopts it.
func DialRing(cfg RingConfig) (*Ring, error) {
	if cfg.Heartbeat <= 0 {
		return nil, fmt.Errorf("comm: DialRing requires a heartbeat interval (the generation protocol rides the liveness layer)")
	}
	t, err := DialTCPRingConfig(cfg)
	if err != nil {
		return nil, err
	}
	return &Ring{cfg: cfg, cur: t}, nil
}

// ring returns the current incarnation.
func (r *Ring) ring() *TCPRing {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cur
}

// Generation reports the current incarnation's group generation.
func (r *Ring) Generation() uint64 { return r.ring().Generation() }

// Step reports the current incarnation's collective-op count.
func (r *Ring) Step() int64 { return r.ring().Step() }

// Reform tears down the current incarnation and dials a fresh ring at the
// next group generation. Every member of the group must reform concurrently
// (survivors after an ErrPeerDead verdict, the replacement through DialRing);
// the handshake protocol rejects members still at the old generation, so a
// completed Reform guarantees the whole group moved together.
func (r *Ring) Reform() (uint64, error) {
	r.mu.Lock()
	old := r.cur
	r.mu.Unlock()
	old.Kill() // sever every old-incarnation connection before redialing
	cfg := r.cfg
	cfg.Generation = old.Generation() + 1
	t, err := DialTCPRingConfig(cfg)
	if err != nil {
		return 0, wrapErr(cfg.Rank, OpReform, old.Step(), fmt.Errorf("ring reform: %w", err))
	}
	r.mu.Lock()
	r.cur = t
	r.mu.Unlock()
	telemetry.Default.Add(telemetry.CtrRingReconnects, 1)
	telemetry.Default.Add(telemetry.CtrGroupReforms, 1)
	xrank.Default.SetGeneration(t.Generation())
	xrank.Default.RecordFault(cfg.Rank, xrank.OpReform, t.Step(), xrank.FaultReform)
	return t.Generation(), nil
}

// Rank returns this worker's rank.
func (r *Ring) Rank() int { return r.cfg.Rank }

// Size returns the group size.
func (r *Ring) Size() int { return len(r.cfg.Addrs) }

// MaxFrameBytes reports the configured incoming-frame bound.
func (r *Ring) MaxFrameBytes() int { return r.ring().MaxFrameBytes() }

// Close tears down the current incarnation gracefully.
func (r *Ring) Close() error { return r.ring().Close() }

// Kill abruptly severs the current incarnation (see TCPRing.Kill).
func (r *Ring) Kill() { r.ring().Kill() }

// Hang freezes the current incarnation (see TCPRing.Hang).
func (r *Ring) Hang() { r.ring().Hang() }

// AllreduceF32 forwards to the current incarnation.
func (r *Ring) AllreduceF32(x []float32) error { return r.ring().AllreduceF32(x) }

// AllgatherBytes forwards to the current incarnation.
func (r *Ring) AllgatherBytes(b []byte) ([][]byte, error) { return r.ring().AllgatherBytes(b) }

// BroadcastBytes forwards to the current incarnation.
func (r *Ring) BroadcastBytes(b []byte, root int) ([]byte, error) {
	return r.ring().BroadcastBytes(b, root)
}

// Barrier forwards to the current incarnation.
func (r *Ring) Barrier() error { return r.ring().Barrier() }

// AllreduceF32Ctx forwards to the current incarnation.
func (r *Ring) AllreduceF32Ctx(ctx context.Context, x []float32) error {
	return r.ring().AllreduceF32Ctx(ctx, x)
}

// AllgatherBytesCtx forwards to the current incarnation.
func (r *Ring) AllgatherBytesCtx(ctx context.Context, b []byte) ([][]byte, error) {
	return r.ring().AllgatherBytesCtx(ctx, b)
}

// BroadcastBytesCtx forwards to the current incarnation.
func (r *Ring) BroadcastBytesCtx(ctx context.Context, b []byte, root int) ([]byte, error) {
	return r.ring().BroadcastBytesCtx(ctx, b, root)
}

// BarrierCtx forwards to the current incarnation.
func (r *Ring) BarrierCtx(ctx context.Context) error { return r.ring().BarrierCtx(ctx) }
