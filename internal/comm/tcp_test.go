package comm

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/fxrand"
)

// hostileFrame builds a frame header claiming n body bytes with no body.
func hostileFrame(n uint32) []byte {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], n)
	return hdr[:]
}

// TestReadFrameRejectsOversizedHeader: a corrupt/hostile 4-byte length prefix
// must be rejected before the body buffer is allocated.
func TestReadFrameRejectsOversizedHeader(t *testing.T) {
	for _, claim := range []uint32{1 << 20, 1<<31 - 1, 1<<32 - 1} {
		r := bufio.NewReader(bytes.NewReader(hostileFrame(claim)))
		buf, err := readFrame(r, 1<<16)
		if !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("claim %d: err = %v, want ErrFrameTooLarge", claim, err)
		}
		if buf != nil {
			t.Fatalf("claim %d: got a buffer despite rejection", claim)
		}
	}
}

func TestReadFrameRejectionAllocatesNothingLarge(t *testing.T) {
	payload := hostileFrame(1<<32 - 1)
	allocs := testing.AllocsPerRun(100, func() {
		r := bufio.NewReader(bytes.NewReader(payload))
		_, _ = readFrame(r, 1<<20)
	})
	// bufio.Reader + readers dominate; the point is no 4 GiB body buffer.
	// A handful of small allocations is fine.
	if allocs > 20 {
		t.Fatalf("rejection path allocated %v objects per run", allocs)
	}
}

func TestReadFrameRoundTrip(t *testing.T) {
	var stream []byte
	frames := [][]byte{nil, {1}, bytes.Repeat([]byte{0xCD}, 70000)}
	for _, f := range frames {
		stream = appendFrame(stream, f)
	}
	r := bufio.NewReader(bytes.NewReader(stream))
	for i, want := range frames {
		got, err := readFrame(r, DefaultMaxFrameBytes)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: round trip mismatch (%d vs %d bytes)", i, len(got), len(want))
		}
	}
}

func TestReadFrameTruncatedBody(t *testing.T) {
	stream := hostileFrame(100) // claims 100 bytes, delivers 3
	stream = append(stream, 1, 2, 3)
	r := bufio.NewReader(bytes.NewReader(stream))
	if _, err := readFrame(r, 1<<16); err == nil {
		t.Fatal("expected error for truncated body")
	}
}

// TestTCPRingSendRejectsOversizedFrame: the sender side refuses to emit
// frames beyond the bound instead of poisoning the peer.
func TestTCPRingSendRejectsOversizedFrame(t *testing.T) {
	addrs := freeAddrs(t, 2)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	withDeadline(t, 10*time.Second, func() {
		for rank := 0; rank < 2; rank++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				ring, err := DialTCPRingConfig(RingConfig{
					Rank: rank, Addrs: addrs,
					SetupTimeout:  5 * time.Second,
					OpTimeout:     2 * time.Second,
					MaxFrameBytes: 1 << 10,
				})
				if err != nil {
					errs[rank] = err
					return
				}
				defer ring.Close()
				_, errs[rank] = ring.AllgatherBytes(make([]byte, 1<<12))
			}(rank)
		}
		wg.Wait()
	})
	for rank, err := range errs {
		if !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("rank %d: err = %v, want ErrFrameTooLarge", rank, err)
		}
		var ce *Error
		if !errors.As(err, &ce) || ce.Op != OpAllgather || ce.Step != 1 {
			t.Fatalf("rank %d: error %v lacks (op, step) coordinates", rank, err)
		}
	}
}

// TestTCPRingOpDeadline: a peer that goes silent mid-collective must surface
// a timeout error on the healthy rank, not a hang.
func TestTCPRingOpDeadline(t *testing.T) {
	addrs := freeAddrs(t, 2)
	var healthyErr error
	withDeadline(t, 15*time.Second, func() {
		var wg sync.WaitGroup
		release := make(chan struct{})
		for rank := 0; rank < 2; rank++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				ring, err := DialTCPRingConfig(RingConfig{
					Rank: rank, Addrs: addrs,
					SetupTimeout: 5 * time.Second,
					OpTimeout:    200 * time.Millisecond,
				})
				if err != nil {
					t.Error(err)
					return
				}
				defer ring.Close()
				if rank == 1 {
					// Silent peer: never enters the collective.
					<-release
					return
				}
				healthyErr = ring.AllreduceF32(make([]float32, 16))
				close(release)
			}(rank)
		}
		wg.Wait()
	})
	if healthyErr == nil {
		t.Fatal("allreduce against a silent peer should time out")
	}
	var ce *Error
	if !errors.As(healthyErr, &ce) || ce.Rank != 0 || ce.Op != OpAllreduce {
		t.Fatalf("error %v lacks typed (rank, op) coordinates", healthyErr)
	}
	var ne interface{ Timeout() bool }
	if !errors.As(healthyErr, &ne) || !ne.Timeout() {
		t.Fatalf("error %v should be a net timeout", healthyErr)
	}
}

// fakeSilentRank performs the generation-era ring handshake for rank —
// including the two ring-confirmation rounds, so its neighbors' setup
// completes — and then goes silent: connections held open, no heartbeats, no
// frames. This is the failure mode only the liveness layer can detect — a
// hung or partitioned process emits no RST, so the data connections of its
// neighbors stay "healthy" right up to their (long) OpTimeout.
func fakeSilentRank(t *testing.T, rank int, addrs []string) (stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", addrs[rank])
	if err != nil {
		t.Fatal(err)
	}
	var conns []net.Conn
	done := make(chan struct{})
	go func() {
		defer close(done)
		deadline := time.Now().Add(5 * time.Second)
		rng := fxrand.New(99)
		succ := addrs[(rank+1)%len(addrs)]
		var dialedData net.Conn
		for _, role := range []byte{preambleData, preambleHeartbeat} {
			c, _, err := dialHandshake(succ, role, 0, true, deadline, rng)
			if err != nil {
				t.Error(err)
				return
			}
			conns = append(conns, c)
			if role == preambleData {
				dialedData = c
			}
		}
		var acceptedData net.Conn
		for i := 0; i < 2; i++ {
			c, err := ln.Accept()
			if err != nil {
				t.Error(err)
				return
			}
			conns = append(conns, c)
			role, _, err := readHandshake(c, deadline)
			if err != nil {
				t.Error(err)
				return
			}
			if err := writeHandshakeReply(c, hsAccept, 0, deadline); err != nil {
				t.Error(err)
				return
			}
			if role == preambleData {
				acceptedData = c
			}
		}
		// Relay the two ring-confirmation tokens so neighbors finish setup.
		tok := appendHandshakeInto(nil, confirmMagic, 0)
		var in [handshakeLen]byte
		for round := 0; round < 2; round++ {
			dialedData.SetWriteDeadline(deadline)
			if _, err := dialedData.Write(tok); err != nil {
				t.Error(err)
				return
			}
			acceptedData.SetReadDeadline(deadline)
			if _, err := io.ReadFull(acceptedData, in[:]); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	return func() {
		<-done
		ln.Close()
		for _, c := range conns {
			c.Close()
		}
	}
}

// TestTCPRingHeartbeatDeadPeerAndReform: with heartbeats on, a rank that
// hangs after joining the ring is declared dead within the heartbeat window —
// surfacing a typed *Error wrapping ErrPeerDead on the survivors seconds
// before the per-op stall timeout would fire — and a replacement ring formed
// afterwards (restarted worker included) operates normally.
func TestTCPRingHeartbeatDeadPeerAndReform(t *testing.T) {
	const n = 3
	const hbInterval = 25 * time.Millisecond
	addrs := freeAddrs(t, n)
	stop := fakeSilentRank(t, 1, addrs)
	defer stop()

	errs := make([]error, n)
	elapsed := make([]time.Duration, n)
	withDeadline(t, 20*time.Second, func() {
		var wg sync.WaitGroup
		for _, rank := range []int{0, 2} {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				ring, err := DialTCPRingConfig(RingConfig{
					Rank: rank, Addrs: addrs,
					SetupTimeout:    5 * time.Second,
					OpTimeout:       30 * time.Second, // stall tolerance stays long
					Heartbeat:       hbInterval,
					HeartbeatMisses: 3,
				})
				if err != nil {
					errs[rank] = err
					return
				}
				defer ring.Close()
				start := time.Now()
				errs[rank] = ring.AllreduceF32(make([]float32, 64))
				elapsed[rank] = time.Since(start)
			}(rank)
		}
		wg.Wait()
	})
	for _, rank := range []int{0, 2} {
		err := errs[rank]
		if !errors.Is(err, ErrPeerDead) {
			t.Fatalf("rank %d: err = %v, want ErrPeerDead", rank, err)
		}
		var ce *Error
		if !errors.As(err, &ce) || ce.Op != OpHeartbeat {
			t.Fatalf("rank %d: error %v is not a typed heartbeat failure", rank, err)
		}
		if elapsed[rank] > 5*time.Second {
			t.Fatalf("rank %d: detection took %v, should be near the heartbeat window", rank, elapsed[rank])
		}
	}

	// The supervisor restarts the dead worker; the ring reforms on fresh
	// addresses and runs real collectives — including an idle stretch much
	// longer than the miss window, which must NOT trigger a false positive
	// because idle pings keep flowing.
	stop()
	fresh := freeAddrs(t, n)
	withDeadline(t, 30*time.Second, func() {
		var wg sync.WaitGroup
		reformErrs := make([]error, n)
		for rank := 0; rank < n; rank++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				ring, err := DialTCPRingConfig(RingConfig{
					Rank: rank, Addrs: fresh,
					SetupTimeout:    5 * time.Second,
					OpTimeout:       10 * time.Second,
					Heartbeat:       hbInterval,
					HeartbeatMisses: 3,
				})
				if err != nil {
					reformErrs[rank] = err
					return
				}
				defer ring.Close()
				x := []float32{float32(rank), 1}
				if err := ring.AllreduceF32(x); err != nil {
					reformErrs[rank] = err
					return
				}
				if x[0] != 3 || x[1] != 3 { // 0+1+2, 1+1+1
					reformErrs[rank] = errors.New("wrong allreduce sum after reform")
					return
				}
				time.Sleep(8 * hbInterval) // idle >> miss window
				reformErrs[rank] = ring.Barrier()
			}(rank)
		}
		wg.Wait()
		for rank, err := range reformErrs {
			if err != nil {
				t.Errorf("reformed ring rank %d: %v", rank, err)
			}
		}
	})
}

// TestTCPRingResetFault: a Faulty-injected connection reset at one rank
// surfaces typed errors on every rank within the deadline.
func TestTCPRingResetFault(t *testing.T) {
	const n = 3
	addrs := freeAddrs(t, n)
	errs := make([]error, n)
	withDeadline(t, 15*time.Second, func() {
		var wg sync.WaitGroup
		for rank := 0; rank < n; rank++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				ring, err := DialTCPRingConfig(RingConfig{
					Rank: rank, Addrs: addrs,
					SetupTimeout: 5 * time.Second,
					OpTimeout:    2 * time.Second,
				})
				if err != nil {
					errs[rank] = err
					return
				}
				defer ring.Close()
				w := NewFaulty(ring, Plan{Faults: []Fault{
					{Kind: FaultReset, Rank: 1, Op: OpAllgather, FromStep: 2},
				}})
				for k := 0; k < 5; k++ {
					if _, err := w.AllgatherBytes([]byte{byte(rank), byte(k)}); err != nil {
						errs[rank] = err
						return
					}
				}
			}(rank)
		}
		wg.Wait()
	})
	for rank, err := range errs {
		if err == nil {
			t.Fatalf("rank %d: completed despite injected reset", rank)
		}
		var ce *Error
		if !errors.As(err, &ce) {
			t.Fatalf("rank %d: error %v is not typed", rank, err)
		}
	}
	if !errors.Is(errs[1], ErrInjected) {
		t.Fatalf("victim error %v should wrap ErrInjected", errs[1])
	}
}
