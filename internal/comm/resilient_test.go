package comm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// flakyColl fails each op transiently failN times before letting it through
// to a Serial-like success, mutating allreduce inputs on failed attempts the
// way a half-finished ring pass would.
type flakyColl struct {
	failN int
	calls int
	fatal error // returned instead of the transient failure when set
}

func (f *flakyColl) Rank() int { return 0 }
func (f *flakyColl) Size() int { return 1 }

func (f *flakyColl) fail() error {
	f.calls++
	if f.calls <= f.failN {
		if f.fatal != nil {
			return f.fatal
		}
		return fmt.Errorf("attempt %d: %w", f.calls, ErrInjected)
	}
	return nil
}

func (f *flakyColl) AllreduceF32(x []float32) error {
	for i := range x {
		x[i] *= 7 // scribble: a retry must restore the caller's input
	}
	if err := f.fail(); err != nil {
		return err
	}
	for i := range x {
		x[i] /= 7
	}
	return nil
}

func (f *flakyColl) AllgatherBytes(b []byte) ([][]byte, error) {
	if err := f.fail(); err != nil {
		return nil, err
	}
	return [][]byte{b}, nil
}

func (f *flakyColl) BroadcastBytes(b []byte, root int) ([]byte, error) {
	if err := f.fail(); err != nil {
		return nil, err
	}
	return b, nil
}

func (f *flakyColl) Barrier() error { return f.fail() }

func fastPolicy() RetryPolicy {
	return RetryPolicy{PerOp: 3, Budget: 16, BaseBackoff: time.Microsecond, MaxBackoff: 4 * time.Microsecond}
}

func TestResilientAbsorbsTransientFailures(t *testing.T) {
	inner := &flakyColl{failN: 2}
	r := NewResilient(inner, fastPolicy())
	x := []float32{1, 2, 3}
	if err := r.AllreduceF32(x); err != nil {
		t.Fatalf("allreduce: %v", err)
	}
	if x[0] != 1 || x[1] != 2 || x[2] != 3 {
		t.Fatalf("retries corrupted the input restore: %v", x)
	}
	if r.Retries() != 2 {
		t.Fatalf("retries = %d, want 2", r.Retries())
	}

	inner = &flakyColl{failN: 1}
	r = NewResilient(inner, fastPolicy())
	all, err := r.AllgatherBytes([]byte{9})
	if err != nil || len(all) != 1 || all[0][0] != 9 {
		t.Fatalf("allgather after retry: %v %v", all, err)
	}
	inner = &flakyColl{failN: 1}
	r = NewResilient(inner, fastPolicy())
	out, err := r.BroadcastBytes([]byte{5}, 0)
	if err != nil || out[0] != 5 {
		t.Fatalf("broadcast after retry: %v %v", out, err)
	}
	inner = &flakyColl{failN: 2}
	r = NewResilient(inner, fastPolicy())
	if err := r.Barrier(); err != nil {
		t.Fatalf("barrier after retries: %v", err)
	}
}

func TestResilientPerOpExhaustion(t *testing.T) {
	r := NewResilient(&flakyColl{failN: 100}, fastPolicy())
	err := r.Barrier()
	if !errors.Is(err, ErrRetriesExhausted) || !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrRetriesExhausted wrapping the last transient cause", err)
	}
	if IsTransient(err) {
		t.Fatal("an exhausted op must classify fatal, or callers would retry the retrier")
	}
}

func TestResilientBudgetExhaustion(t *testing.T) {
	pol := fastPolicy()
	pol.Budget = 3
	inner := &flakyColl{failN: 1 << 30}
	r := NewResilient(inner, pol)
	var err error
	for i := 0; i < 4; i++ {
		err = r.Barrier()
	}
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted once the handle budget is spent", err)
	}
	// With the budget spent, a transient failure costs exactly one attempt.
	before := inner.calls
	r.Barrier()
	if inner.calls != before+1 {
		t.Fatalf("spent budget still retried: %d extra attempts", inner.calls-before-1)
	}
}

func TestResilientFatalPassThrough(t *testing.T) {
	inner := &flakyColl{failN: 100, fatal: fmt.Errorf("neighbor: %w", ErrPeerDead)}
	r := NewResilient(inner, fastPolicy())
	err := r.Barrier()
	if !errors.Is(err, ErrPeerDead) {
		t.Fatalf("err = %v, want the fatal cause untouched", err)
	}
	if inner.calls != 1 {
		t.Fatalf("fatal failure was attempted %d times, want 1", inner.calls)
	}
}

func TestResilientBackoffDeterministic(t *testing.T) {
	mk := func() []time.Duration {
		r := NewResilient(&flakyColl{}, RetryPolicy{Seed: 42, BaseBackoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond})
		var out []time.Duration
		for a := 1; a <= 6; a++ {
			out = append(out, r.backoff(a))
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("backoff stream not reproducible at %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] <= 0 || a[i] > 8*time.Millisecond {
			t.Fatalf("backoff %v out of bounds", a[i])
		}
	}
}

func TestResilientContextCancelStopsRetry(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := NewResilient(&flakyColl{failN: 100}, RetryPolicy{BaseBackoff: time.Hour, MaxBackoff: time.Hour})
	err := r.BarrierCtx(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled out of the backoff sleep", err)
	}
}

// TestResilientHubChaosCompletes is the comm-level acceptance check: a
// transient-only fault plan (drops and resets in bounded windows) over the
// hub completes with zero outside intervention, because every rank's
// Resilient reforms the aborted group and retries the same lockstep op.
func TestResilientHubChaosCompletes(t *testing.T) {
	const n, steps = 3, 8
	hub := NewHub(n)
	hub.SetReformTimeout(10 * time.Second)
	plan := Plan{Seed: 7, Faults: []Fault{
		// Bounded windows: the Faulty step counter advances per attempt, so
		// an open-ended rule would re-fire on every retry forever. Allgathers
		// sit on even per-rank steps until a retry shifts the parity, hence
		// the two-step window on the second rule.
		{Kind: FaultDrop, Rank: 1, Op: OpAllgather, FromStep: 4, ToStep: 4},
		{Kind: FaultDrop, Rank: 2, Op: OpAllgather, FromStep: 9, ToStep: 10},
	}}
	errs := make([]error, n)
	sums := make([][]float32, n)
	var wg sync.WaitGroup
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			w := NewResilient(NewFaulty(hub.Worker(rank), plan), RetryPolicy{
				Seed: 11, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond,
			})
			for s := 0; s < steps; s++ {
				x := []float32{float32(rank), 1}
				if err := w.AllreduceF32(x); err != nil {
					errs[rank] = fmt.Errorf("step %d allreduce: %w", s, err)
					return
				}
				if _, err := w.AllgatherBytes([]byte{byte(rank), byte(s)}); err != nil {
					errs[rank] = fmt.Errorf("step %d allgather: %w", s, err)
					return
				}
				sums[rank] = x
			}
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	for rank, x := range sums {
		if x[0] != 3 || x[1] != 3 { // 0+1+2 and 1+1+1
			t.Fatalf("rank %d: wrong allreduce result %v after healed chaos", rank, x)
		}
	}
	if hub.Generation() == 0 {
		t.Fatal("chaos plan with drops should have forced at least one reform")
	}
}

// TestResilientStaleGenerationIsPermanent pins the Resilient × elastic-reform
// contract: a retry must never straddle a group-generation bump. When the
// group reforms (a rejoin heal or an elastic shrink/grow) between a failure
// and its retry, the stale rank's traffic is stamped with the old generation
// and rejected with ErrStaleGeneration — that rejection must classify fatal
// and surface on the FIRST attempt, with no in-place retry and no reform
// driven by the wrapper. Replaying a pre-reform op into the post-reform group
// would corrupt the lockstep op sequence; recovery belongs to the trainer's
// heal path, which re-syncs state before continuing.
func TestResilientStaleGenerationIsPermanent(t *testing.T) {
	stale := fmt.Errorf("ring: neighbor at generation 3, local 4: %w", ErrStaleGeneration)
	inner := &flakyColl{failN: 100, fatal: stale}
	r := NewResilient(inner, fastPolicy())
	err := r.AllreduceF32([]float32{1, 2})
	if !errors.Is(err, ErrStaleGeneration) {
		t.Fatalf("err = %v, want ErrStaleGeneration through the wrapper", err)
	}
	if inner.calls != 1 {
		t.Fatalf("inner op attempted %d times, want exactly 1 (no retry across a generation bump)", inner.calls)
	}
	if r.Retries() != 0 || r.Reforms() != 0 {
		t.Fatalf("wrapper spent %d retries / %d reforms on a stale-generation failure, want none",
			r.Retries(), r.Reforms())
	}

	// Fatal sentinels dominate mixed chains: a stale-generation rejection that
	// ALSO carries a transient indicator (an abort poison, a reset) must still
	// classify fatal — otherwise a retry could sneak the op across the bump.
	mixed := fmt.Errorf("%w: delivered as %w", ErrStaleGeneration, ErrAborted)
	if IsTransient(mixed) {
		t.Fatal("stale generation wrapped in a transient abort classified transient; fatal must dominate")
	}
	inner = &flakyColl{failN: 100, fatal: mixed}
	r = NewResilient(inner, fastPolicy())
	if err := r.Barrier(); !errors.Is(err, ErrStaleGeneration) {
		t.Fatalf("barrier err = %v, want ErrStaleGeneration", err)
	}
	if inner.calls != 1 || r.Retries() != 0 {
		t.Fatalf("mixed stale/transient chain retried (%d calls, %d retries), want a single surfaced attempt",
			inner.calls, r.Retries())
	}
}
