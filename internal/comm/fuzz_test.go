package comm

import (
	"bufio"
	"bytes"
	"errors"
	"testing"
)

// FuzzReadFrame drives the ring's frame codec with arbitrary byte streams:
// it must either return a frame within the configured bound or a clean
// error — never panic, and never allocate a body larger than maxFrame from a
// hostile length prefix.
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendFrame(nil, []byte("hello")))
	f.Add(appendFrame(appendFrame(nil, nil), []byte{1, 2, 3}))
	f.Add(hostileFrame(1<<32 - 1))
	f.Add(hostileFrame(1 << 20))
	f.Add([]byte{0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxFrame = 1 << 16
		r := bufio.NewReader(bytes.NewReader(data))
		for {
			frame, err := readFrame(r, maxFrame)
			if err != nil {
				if errors.Is(err, ErrFrameTooLarge) && len(data) < 4 {
					t.Fatalf("too-large verdict from a %d-byte stream", len(data))
				}
				return
			}
			if len(frame) > maxFrame {
				t.Fatalf("frame of %d bytes exceeds bound %d", len(frame), maxFrame)
			}
		}
	})
}

// FuzzRingHandshake drives the generation protocol's decoders — the dialer
// handshake record, the acceptor reply, and the stateful heartbeat stream
// parser — with hostile bytes under arbitrary chunking. They must never
// panic, must reject anything but an exact record with a typed error
// (ErrCorrupt, or ErrStaleGeneration for a mis-stamped ping), and accepted
// records must round-trip through the encoder.
func FuzzRingHandshake(f *testing.F) {
	f.Add([]byte{}, uint64(0), 1)
	f.Add(appendHandshakeInto(nil, preambleData, 7), uint64(7), 4)
	f.Add(appendHandshakeInto(nil, confirmMagic, 1<<40), uint64(1), 0)
	f.Add(appendHandshakeInto(nil, hsAccept, 1), uint64(1), 3)
	f.Add(appendHandshakeInto(nil, hsReject, 2), uint64(2), 9)
	f.Add(appendHandshakeInto(appendHandshakeInto(nil, preambleHeartbeat, 3), preambleHeartbeat, 3), uint64(3), 9)
	f.Add(appendHandshakeInto(nil, preambleHeartbeat, 5), uint64(6), 2)
	f.Add([]byte{hbBye}, uint64(0), 0)
	f.Add([]byte{preambleHeartbeat, 0, 0}, uint64(0), 2)
	f.Fuzz(func(t *testing.T, data []byte, gen uint64, split int) {
		kind, g, err := parseHandshake(data)
		if err == nil {
			if !bytes.Equal(appendHandshakeInto(nil, kind, g), data) {
				t.Fatalf("accepted handshake does not round-trip: %q", data)
			}
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("handshake rejection is untyped: %v", err)
		}
		status, g, err := parseHandshakeReply(data)
		if err == nil {
			if !bytes.Equal(appendHandshakeInto(nil, status, g), data) {
				t.Fatalf("accepted reply does not round-trip: %q", data)
			}
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("reply rejection is untyped: %v", err)
		}

		// The heartbeat stream parser, fed the same bytes in two arbitrary
		// pieces: partial records must carry across feeds, and any verdict
		// must be typed.
		if split < 0 {
			split = -split
		}
		split %= len(data) + 1
		var p hbParser
		for _, chunk := range [][]byte{data[:split], data[split:]} {
			bye, err := p.feed(chunk, gen)
			if err != nil {
				if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrStaleGeneration) {
					t.Fatalf("heartbeat verdict is untyped: %v", err)
				}
				return
			}
			if bye {
				return
			}
		}
		if len(p.buf) >= handshakeLen {
			t.Fatalf("parser retained %d buffered bytes past a whole record", len(p.buf))
		}
	})
}

// FuzzFrameRoundTrip checks append/read are inverses for arbitrary payloads
// under the bound.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3})
	f.Fuzz(func(t *testing.T, payload []byte) {
		if len(payload) > 1<<20 {
			t.Skip()
		}
		stream := appendFrame(nil, payload)
		r := bufio.NewReader(bytes.NewReader(stream))
		got, err := readFrame(r, 1<<20)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip mismatch: %d vs %d bytes", len(got), len(payload))
		}
	})
}

// FuzzElasticHandshake drives the elastic membership wire surface with
// arbitrary bytes: the member-list codec the join/probe exchanges speak, and
// the set algebra the grow/shrink commits rely on. Hostile input must be
// rejected with typed ErrCorrupt errors (never a panic or an oversized
// allocation), accepted blobs must round-trip exactly, and the membership
// digest that guards ring confirmation must stay nonzero and list-sensitive.
func FuzzElasticHandshake(f *testing.F) {
	f.Add([]byte{}, uint32(0), uint32(1), uint32(2))
	f.Add(encodeMembers([]int{0, 1, 2}), uint32(0), uint32(1), uint32(2))
	f.Add(encodeMembers([]int{3}), uint32(3), uint32(3), uint32(3))
	f.Add([]byte{0, 0, 0, 1}, uint32(1), uint32(0), uint32(5))                  // truncated body
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}, uint32(0), uint32(2), uint32(4))      // hostile count
	f.Add([]byte{0, 0, 0, 2, 0, 0, 0, 5, 0, 0, 0, 5}, uint32(5), uint32(6), uint32(7)) // duplicate
	f.Fuzz(func(t *testing.T, data []byte, a, b, c uint32) {
		members, err := decodeMembers(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("member-list rejection is untyped: %v", err)
			}
		} else {
			if len(members) == 0 || len(members) > maxMembers {
				t.Fatalf("accepted member list of size %d outside [1,%d]", len(members), maxMembers)
			}
			for i, m := range members {
				if m < 0 || m > maxMembers {
					t.Fatalf("accepted out-of-range member %d", m)
				}
				if i > 0 && m <= members[i-1] {
					t.Fatalf("accepted non-ascending member list %v", members)
				}
				if indexOf(members, m) != i {
					t.Fatalf("indexOf disagrees with position for %v", members)
				}
			}
			if !bytes.Equal(encodeMembers(members), data) {
				t.Fatalf("accepted member list does not round-trip: %q", data)
			}
			if membershipDigest(members) == 0 {
				t.Fatalf("zero digest for %v", members)
			}
		}

		// A synthesized list from the fuzzed ranks must always survive the
		// codec: union it, encode it, decode it back identically.
		set := sortedUnion([]int{int(a % maxMembers)},
			sortedUnion([]int{int(b % maxMembers)}, []int{int(c % maxMembers)}))
		got, err := decodeMembers(encodeMembers(set))
		if err != nil {
			t.Fatalf("valid member list %v rejected: %v", set, err)
		}
		for i := range set {
			if got[i] != set[i] {
				t.Fatalf("round trip changed %v to %v", set, got)
			}
		}
		if d := membershipDigest(set); d == 0 {
			t.Fatalf("zero digest for %v", set)
		} else if len(set) > 1 && d == membershipDigest(set[:len(set)-1]) {
			t.Fatalf("digest insensitive to dropping the last member of %v", set)
		}
	})
}
