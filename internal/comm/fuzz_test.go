package comm

import (
	"bufio"
	"bytes"
	"errors"
	"testing"
)

// FuzzReadFrame drives the ring's frame codec with arbitrary byte streams:
// it must either return a frame within the configured bound or a clean
// error — never panic, and never allocate a body larger than maxFrame from a
// hostile length prefix.
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendFrame(nil, []byte("hello")))
	f.Add(appendFrame(appendFrame(nil, nil), []byte{1, 2, 3}))
	f.Add(hostileFrame(1<<32 - 1))
	f.Add(hostileFrame(1 << 20))
	f.Add([]byte{0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxFrame = 1 << 16
		r := bufio.NewReader(bytes.NewReader(data))
		for {
			frame, err := readFrame(r, maxFrame)
			if err != nil {
				if errors.Is(err, ErrFrameTooLarge) && len(data) < 4 {
					t.Fatalf("too-large verdict from a %d-byte stream", len(data))
				}
				return
			}
			if len(frame) > maxFrame {
				t.Fatalf("frame of %d bytes exceeds bound %d", len(frame), maxFrame)
			}
		}
	})
}

// FuzzFrameRoundTrip checks append/read are inverses for arbitrary payloads
// under the bound.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3})
	f.Fuzz(func(t *testing.T, payload []byte) {
		if len(payload) > 1<<20 {
			t.Skip()
		}
		stream := appendFrame(nil, payload)
		r := bufio.NewReader(bytes.NewReader(stream))
		got, err := readFrame(r, 1<<20)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip mismatch: %d vs %d bytes", len(got), len(payload))
		}
	})
}
