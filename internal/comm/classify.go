package comm

import (
	"context"
	"errors"
	"io"
	"net"
	"syscall"
)

// Class partitions communication failures by what a caller can soundly do
// about them: retry the op, or escalate to recovery (ring reform + rejoin, or
// a supervisor restart). The taxonomy is deliberately conservative — anything
// unrecognized is fatal, because retrying a non-idempotent failure mode is
// worse than restarting from a checkpoint.
type Class int

const (
	// ClassFatal failures must not be retried at the op level: the peer is
	// gone, the protocol state is corrupt, or the failure is deterministic
	// (the retry would fail identically). Recovery means reforming the group
	// or restarting from a checkpoint.
	ClassFatal Class = iota
	// ClassTransient failures are worth retrying in place: timeouts, reset
	// connections, injected chaos drops — conditions that a later attempt
	// (after the group re-synchronizes) can succeed through.
	ClassTransient
)

// String names the class for logs and tables.
func (c Class) String() string {
	if c == ClassTransient {
		return "transient"
	}
	return "fatal"
}

// fatalSentinels are causes that make a failure unconditionally fatal, even
// when a transient indicator also appears in the chain (an abort whose cause
// is a dead peer is a dead peer, not a timeout).
var fatalSentinels = []error{
	ErrPeerDead,
	ErrFrameTooLarge,
	ErrCorrupt,
	ErrStaleGeneration,
	ErrRetriesExhausted,
	ErrEvicted,
}

// transientSentinels are causes a bounded retry is allowed to absorb.
var transientSentinels = []error{
	ErrInjected,               // chaos drops/resets are transient by design
	ErrAborted,                // group poison: cleared by a reform rendezvous
	context.DeadlineExceeded,  // per-op deadline (comm.WithTimeout)
	io.EOF,                    // peer closed mid-frame
	io.ErrUnexpectedEOF,       // truncated frame
	net.ErrClosed,             // connection torn down under the op
	syscall.ECONNRESET,        // TCP RST
	syscall.ECONNREFUSED,      // peer not listening (yet)
	syscall.EPIPE,             // write to a closed connection
	syscall.ECONNABORTED,      // accept-queue teardown
}

// Classify maps a communication failure onto the retry taxonomy. Fatal
// sentinels dominate: an ErrAborted whose cause wraps ErrPeerDead classifies
// fatal even though a bare abort is transient. Timeouts reported through
// net.Error classify transient. nil is not a failure and classifies fatal
// (never retry a success path on a nil error).
func Classify(err error) Class {
	if err == nil {
		return ClassFatal
	}
	for _, s := range fatalSentinels {
		if errors.Is(err, s) {
			return ClassFatal
		}
	}
	for _, s := range transientSentinels {
		if errors.Is(err, s) {
			return ClassTransient
		}
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return ClassTransient
	}
	return ClassFatal
}

// IsTransient reports whether a bounded in-place retry of the failed op is
// sound (see Classify).
func IsTransient(err error) bool { return Classify(err) == ClassTransient }
