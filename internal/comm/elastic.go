package comm

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"
)

// Elastic membership.
//
// The generation-stamped reform protocol (Reformer) can only rebuild the
// group at its original world size: every rank must come back, so a
// permanently lost machine parks the survivors forever. The elastic layer
// relaxes that. Ranks keep their *original* identity for life — checkpoint
// directories, snapshot ownership, and supervisor bookkeeping stay keyed by
// it — while the collective's Rank()/Size() report the rank's *current*
// index inside the sorted member set. The remap is therefore deterministic:
// after losing original rank 1 from {0,1,2}, the members are {0,2} and their
// current ranks are 0 and 1; if rank 1 later rejoins, everyone's original
// index is restored.
//
// A shrink is a vote with a deadline: survivors call ReformElastic(wait) in
// place of Reform. If the full membership arrives within wait, the group
// reforms intact (a transient death that healed in time). Otherwise the
// arrived set commits a new generation at the smaller size and the missing
// ranks are evicted — any later call they make fails with ErrEvicted, which
// classifies as fatal so no retry layer resurrects them into a group that
// has moved on without them.
//
// A grow is the reverse handshake: a fresh worker registers as a pending
// joiner (Joiner.JoinGroup blocks until absorbed), the members observe it at
// a step boundary, agree on the same absorb set, and call ReformGrow — one
// rendezvous later the group is back at the larger size with the original
// indices restored.

// Membership describes one committed configuration of an elastic group.
type Membership struct {
	// Gen is the generation the configuration was committed under.
	Gen uint64
	// Members holds the original ranks currently in the group, sorted
	// ascending. A member's current rank is its index in this slice.
	Members []int
	// Rank is the receiver's current rank: its index in Members. Negative in
	// memberships not addressed to a specific member.
	Rank int
	// Lost holds the original ranks evicted by the transition that produced
	// this membership (empty for intact reforms and grows).
	Lost []int
}

// Size is the committed world size.
func (m Membership) Size() int { return len(m.Members) }

// CurrentRank maps an original rank to its current index in the member set,
// or -1 if the rank is not a member.
func (m Membership) CurrentRank(orig int) int { return indexOf(m.Members, orig) }

// Elastic is implemented by collectives whose group can change world size at
// a reform boundary. Like Reform, both reform calls are synchronization
// points: every current member must call the same method at the same
// position of its op sequence.
type Elastic interface {
	// ReformElastic rebuilds the group, waiting up to wait for the full
	// membership; members still missing when the deadline expires are evicted
	// and the survivors commit a smaller world size.
	ReformElastic(wait time.Duration) (Membership, error)
	// ReformGrow rebuilds the group absorbing pending joiners. members is the
	// agreed post-grow member set (original ranks, sorted); every current
	// member must pass the same set. Pending joiners not in members stay
	// pending; listed joiners that never registered are skipped.
	ReformGrow(members []int) (Membership, error)
	// PendingJoins reports the original ranks of workers waiting to be
	// absorbed, sorted ascending.
	PendingJoins() []int
	// Membership reports the current committed configuration.
	Membership() Membership
}

// Joiner is the fresh worker's side of the grow handshake.
type Joiner interface {
	// JoinGroup blocks until the group absorbs this worker via ReformGrow or
	// wait expires.
	JoinGroup(wait time.Duration) (Membership, error)
}

// AsElastic walks a wrapper chain down to the first layer that supports
// elastic membership, if any.
func AsElastic(c Collective) (Elastic, bool) {
	for c != nil {
		if e, ok := c.(Elastic); ok {
			return e, true
		}
		u, ok := c.(Unwrapper)
		if !ok {
			return nil, false
		}
		c = u.Unwrap()
	}
	return nil, false
}

// AsJoiner walks a wrapper chain down to the first layer that can join an
// elastic group, if any.
func AsJoiner(c Collective) (Joiner, bool) {
	for c != nil {
		if j, ok := c.(Joiner); ok {
			return j, true
		}
		u, ok := c.(Unwrapper)
		if !ok {
			return nil, false
		}
		c = u.Unwrap()
	}
	return nil, false
}

// maxMembers bounds a decoded member list, mirroring maxFrame's role for
// payload frames: a hostile or corrupt length can't force a huge allocation.
const maxMembers = 4096

// encodeMembers serializes a sorted member list for the join/probe wire
// exchanges: a 4-byte big-endian count followed by one 4-byte big-endian
// original rank per member.
func encodeMembers(members []int) []byte {
	b := make([]byte, 4+4*len(members))
	binary.BigEndian.PutUint32(b, uint32(len(members)))
	for i, m := range members {
		binary.BigEndian.PutUint32(b[4+4*i:], uint32(m))
	}
	return b
}

// decodeMembers parses an encodeMembers payload, rejecting hostile input
// with typed errors: the list must be exactly sized, bounded, strictly
// ascending, and non-negative.
func decodeMembers(b []byte) ([]int, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: member list header %d bytes", ErrCorrupt, len(b))
	}
	n := binary.BigEndian.Uint32(b)
	if n == 0 || n > maxMembers {
		return nil, fmt.Errorf("%w: member count %d out of [1,%d]", ErrCorrupt, n, maxMembers)
	}
	if len(b) != 4+4*int(n) {
		return nil, fmt.Errorf("%w: member list %d bytes, want %d", ErrCorrupt, len(b), 4+4*n)
	}
	members := make([]int, n)
	for i := range members {
		v := binary.BigEndian.Uint32(b[4+4*i:])
		if v > maxMembers {
			return nil, fmt.Errorf("%w: member rank %d out of [0,%d]", ErrCorrupt, v, maxMembers)
		}
		members[i] = int(v)
		if i > 0 && members[i] <= members[i-1] {
			return nil, fmt.Errorf("%w: member list not strictly ascending at index %d", ErrCorrupt, i)
		}
	}
	return members, nil
}

// membershipDigest folds a member list into a nonzero 64-bit FNV-1a digest,
// generation-independent, so ring setup can confirm that all participants
// agree on who is in the group before any payload flows.
func membershipDigest(members []int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, m := range members {
		for s := 0; s < 32; s += 8 {
			h ^= uint64(byte(m >> s))
			h *= prime64
		}
	}
	if h == 0 {
		h = offset64
	}
	return h
}

// indexOf locates v in a sorted ascending slice, or -1.
func indexOf(sorted []int, v int) int {
	i := sort.SearchInts(sorted, v)
	if i < len(sorted) && sorted[i] == v {
		return i
	}
	return -1
}

// sortedUnion merges two sorted ascending member lists without duplicates.
func sortedUnion(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	sort.Ints(out)
	w := 0
	for i, v := range out {
		if i > 0 && v == out[w-1] {
			continue
		}
		out[w] = v
		w++
	}
	return out[:w]
}
