package comm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

func TestFusedRoundTrip(t *testing.T) {
	cases := [][][]byte{
		{},
		{nil},
		{[]byte{}},
		{[]byte("a")},
		{[]byte("alpha"), []byte("b"), nil, []byte("gamma")},
		{nil, nil, nil},
		{bytes.Repeat([]byte{0xAB}, 1<<12), []byte{1}},
	}
	for ci, parts := range cases {
		frame := AppendFused(nil, parts)
		if len(frame) != FusedSize(parts) {
			t.Fatalf("case %d: frame is %d bytes, FusedSize says %d", ci, len(frame), FusedSize(parts))
		}
		got, err := SplitFused(frame, len(parts))
		if err != nil {
			t.Fatalf("case %d: split: %v", ci, err)
		}
		if len(got) != len(parts) {
			t.Fatalf("case %d: got %d parts, want %d", ci, len(got), len(parts))
		}
		for i := range parts {
			if !bytes.Equal(got[i], parts[i]) {
				t.Fatalf("case %d part %d: %q != %q", ci, i, got[i], parts[i])
			}
		}
		// Any-count mode accepts the same frame.
		if _, err := SplitFused(frame, -1); err != nil {
			t.Fatalf("case %d: any-count split: %v", ci, err)
		}
	}
}

func TestFusedAppendReusesBuffer(t *testing.T) {
	buf := make([]byte, 0, 1<<10)
	parts := [][]byte{[]byte("one"), []byte("two")}
	out := AppendFused(buf, parts)
	if &out[0] != &buf[:1][0] {
		t.Fatalf("AppendFused reallocated despite sufficient capacity")
	}
}

func TestSplitFusedRejects(t *testing.T) {
	good := AppendFused(nil, [][]byte{[]byte("abc"), []byte("de")})
	cases := map[string][]byte{
		"empty":         {},
		"short header":  {1, 0, 0},
		"hostile count": binary.LittleEndian.AppendUint32(nil, 1<<30),
		"truncated len table": binary.LittleEndian.AppendUint32(
			binary.LittleEndian.AppendUint32(nil, 2), 1),
		"payload short": good[:len(good)-1],
		"trailing byte": append(append([]byte(nil), good...), 0),
		"len overflow": func() []byte {
			b := binary.LittleEndian.AppendUint32(nil, 2)
			b = binary.LittleEndian.AppendUint32(b, 1<<32-4)
			b = binary.LittleEndian.AppendUint32(b, 8)
			return append(b, 0, 0, 0, 0)
		}(),
	}
	for name, b := range cases {
		if _, err := SplitFused(b, -1); !errors.Is(err, ErrBadFusedFrame) {
			t.Errorf("%s: got %v, want ErrBadFusedFrame", name, err)
		}
	}
	if _, err := SplitFused(good, 3); !errors.Is(err, ErrBadFusedFrame) {
		t.Errorf("count mismatch: got %v, want ErrBadFusedFrame", err)
	}
}

// FuzzSplitFused drives the fused-frame decoder with arbitrary bytes: it must
// either return parts that exactly tile the body or a clean error wrapping
// ErrBadFusedFrame — never panic, never over-allocate from hostile lengths.
func FuzzSplitFused(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendFused(nil, nil))
	f.Add(AppendFused(nil, [][]byte{[]byte("seed"), nil, []byte{0xFF}}))
	f.Add(binary.LittleEndian.AppendUint32(nil, 1<<31))
	f.Add([]byte{2, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		parts, err := SplitFused(data, -1)
		if err != nil {
			if !errors.Is(err, ErrBadFusedFrame) {
				t.Fatalf("non-sentinel error: %v", err)
			}
			return
		}
		// Valid parse: re-encoding must reproduce the input bit for bit.
		if re := AppendFused(nil, parts); !bytes.Equal(re, data) {
			t.Fatalf("re-encode mismatch: %d vs %d bytes", len(re), len(data))
		}
	})
}
