package comm

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestHubReformClearsAbort: after a poison, a full reform rendezvous restores
// the group, bumps the generation, and collectives work again.
func TestHubReformClearsAbort(t *testing.T) {
	const n = 3
	hub := NewHub(n)
	hub.Abort(fmt.Errorf("simulated: %w", ErrPeerDead))
	if err := hub.Worker(0).Barrier(); !errors.Is(err, ErrAborted) {
		t.Fatalf("poisoned hub barrier err = %v, want ErrAborted", err)
	}
	var wg sync.WaitGroup
	gens := make([]uint64, n)
	errs := make([]error, n)
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			gens[rank], errs[rank] = hub.Worker(rank).Reform()
		}(rank)
	}
	wg.Wait()
	for rank := 0; rank < n; rank++ {
		if errs[rank] != nil {
			t.Fatalf("rank %d reform: %v", rank, errs[rank])
		}
		if gens[rank] != 1 {
			t.Fatalf("rank %d reformed into generation %d, want 1", rank, gens[rank])
		}
	}
	// The healed hub completes real collectives.
	sums := make([][]float32, n)
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			x := []float32{float32(rank)}
			errs[rank] = hub.Worker(rank).AllreduceF32(x)
			sums[rank] = x
		}(rank)
	}
	wg.Wait()
	for rank := 0; rank < n; rank++ {
		if errs[rank] != nil || sums[rank][0] != 3 {
			t.Fatalf("rank %d after reform: sum %v err %v", rank, sums[rank], errs[rank])
		}
	}
	if hub.Generation() != 1 {
		t.Fatalf("hub generation %d, want 1", hub.Generation())
	}
}

// TestHubReformTimeout: a lone rank whose peers never arrive gets a typed
// ErrPeerDead instead of waiting forever.
func TestHubReformTimeout(t *testing.T) {
	hub := NewHub(3)
	hub.SetReformTimeout(50 * time.Millisecond)
	_, err := hub.Worker(0).Reform()
	if !errors.Is(err, ErrPeerDead) {
		t.Fatalf("err = %v, want ErrPeerDead", err)
	}
	var ce *Error
	if !errors.As(err, &ce) || ce.Op != OpReform {
		t.Fatalf("error %v lacks OpReform coordinates", err)
	}
}

// TestRingReformAfterKill is the transport-level rejoin scenario: a 3-rank
// generation ring loses rank 1 (abrupt socket teardown), the survivors'
// collectives fail with ErrPeerDead without their processes restarting, and a
// concurrent Reform on the survivors plus a fresh DialRing at the replacement
// — dialing blind at generation 0 — converges the whole group on generation 1
// and completes bitwise-correct collectives.
func TestRingReformAfterKill(t *testing.T) {
	const n = 3
	const hbInterval = 25 * time.Millisecond
	addrs := freeAddrs(t, n)

	rings := make([]*Ring, n)
	cfg := func(rank int) RingConfig {
		return RingConfig{
			Rank: rank, Addrs: addrs,
			SetupTimeout:    10 * time.Second,
			OpTimeout:       30 * time.Second,
			Heartbeat:       hbInterval,
			HeartbeatMisses: 3,
			Seed:            17,
		}
	}
	withDeadline(t, 60*time.Second, func() {
		var wg sync.WaitGroup
		for rank := 0; rank < n; rank++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				r, err := DialRing(cfg(rank))
				if err != nil {
					t.Errorf("rank %d dial: %v", rank, err)
					return
				}
				rings[rank] = r
			}(rank)
		}
		wg.Wait()
		if t.Failed() {
			return
		}
		defer func() {
			for _, r := range rings {
				if r != nil {
					r.Close()
				}
			}
		}()

		// A healthy round first, then rank 1 dies mid-group.
		for rank := 0; rank < n; rank++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				x := []float32{float32(rank)}
				if err := rings[rank].AllreduceF32(x); err != nil || x[0] != 3 {
					t.Errorf("rank %d healthy round: %v %v", rank, x, err)
				}
			}(rank)
		}
		wg.Wait()
		rings[1].Kill()

		// Survivors' next op fails with the liveness verdict.
		for _, rank := range []int{0, 2} {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				err := rings[rank].Barrier()
				if !errors.Is(err, ErrPeerDead) {
					t.Errorf("rank %d post-kill err = %v, want ErrPeerDead", rank, err)
				}
			}(rank)
		}
		wg.Wait()
		if t.Failed() {
			return
		}

		// Heal: survivors reform (they know the old generation), the
		// replacement dials blind at generation 0 and discovers generation 1
		// through handshake rejections.
		gens := make([]uint64, n)
		for _, rank := range []int{0, 2} {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				gen, err := rings[rank].Reform()
				if err != nil {
					t.Errorf("rank %d reform: %v", rank, err)
					return
				}
				gens[rank] = gen
			}(rank)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := DialRing(cfg(1)) // Generation left at 0: must discover
			if err != nil {
				t.Errorf("replacement dial: %v", err)
				return
			}
			rings[1] = r
			gens[1] = r.Generation()
		}()
		wg.Wait()
		if t.Failed() {
			return
		}
		for rank, gen := range gens {
			if gen != 1 {
				t.Errorf("rank %d at generation %d after reform, want 1", rank, gen)
			}
		}

		// The reformed ring completes correct collectives, including an idle
		// stretch longer than the miss window (pings must keep flowing).
		for rank := 0; rank < n; rank++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				x := []float32{float32(rank), 1}
				if err := rings[rank].AllreduceF32(x); err != nil || x[0] != 3 || x[1] != 3 {
					t.Errorf("rank %d reformed round: %v %v", rank, x, err)
					return
				}
				all, err := rings[rank].AllgatherBytes([]byte{byte(rank + 10)})
				if err != nil || len(all) != n || all[2][0] != 12 {
					t.Errorf("rank %d reformed allgather: %v %v", rank, all, err)
					return
				}
				time.Sleep(8 * hbInterval)
				if err := rings[rank].Barrier(); err != nil {
					t.Errorf("rank %d post-idle barrier: %v", rank, err)
				}
			}(rank)
		}
		wg.Wait()
	})
}

// TestHBParser: the stateful heartbeat decoder must handle split records,
// reject unknown kinds as corruption, and flag cross-generation pings.
func TestHBParser(t *testing.T) {
	ping := appendHandshakeInto(nil, preambleHeartbeat, 7)

	var p hbParser
	// Three pings delivered in awkward fragment sizes.
	stream := bytes.Repeat(ping, 3)
	for _, cut := range [][]byte{stream[:4], stream[4:13], stream[13:14], stream[14:]} {
		bye, err := p.feed(cut, 7)
		if bye || err != nil {
			t.Fatalf("fragmented pings: bye=%v err=%v", bye, err)
		}
	}

	p = hbParser{}
	if bye, err := p.feed(append(append([]byte{}, ping...), hbBye), 7); !bye || err != nil {
		t.Fatalf("bye after ping: bye=%v err=%v", bye, err)
	}

	p = hbParser{}
	if _, err := p.feed([]byte{0xFF}, 7); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown kind err = %v, want ErrCorrupt", err)
	}

	p = hbParser{}
	stale := appendHandshakeInto(nil, preambleHeartbeat, 6)
	if _, err := p.feed(stale, 7); !errors.Is(err, ErrStaleGeneration) {
		t.Fatalf("cross-generation ping err = %v, want ErrStaleGeneration", err)
	}
}

// TestHandshakeCodecs: record encode/decode round-trips and corruption
// rejection for the setup handshake and its reply.
func TestHandshakeCodecs(t *testing.T) {
	for _, kind := range []byte{preambleData, preambleHeartbeat, confirmMagic} {
		rec := appendHandshakeInto(nil, kind, 0xDEADBEEF01)
		k, gen, err := parseHandshake(rec)
		if err != nil || k != kind || gen != 0xDEADBEEF01 {
			t.Fatalf("handshake round trip kind %q: %q %d %v", kind, k, gen, err)
		}
	}
	for _, status := range []byte{hsAccept, hsReject} {
		rec := appendHandshakeInto(nil, status, 3)
		s, gen, err := parseHandshakeReply(rec)
		if err != nil || s != status || gen != 3 {
			t.Fatalf("reply round trip %q: %q %d %v", status, s, gen, err)
		}
	}
	if _, _, err := parseHandshake([]byte{preambleData, 1}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short handshake err = %v, want ErrCorrupt", err)
	}
	if _, _, err := parseHandshake(appendHandshakeInto(nil, 'Z', 1)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown handshake kind err = %v, want ErrCorrupt", err)
	}
	if _, _, err := parseHandshakeReply(appendHandshakeInto(nil, 'Z', 1)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown reply status err = %v, want ErrCorrupt", err)
	}
}
