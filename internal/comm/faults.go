package comm

import (
	"context"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/fxrand"
	"repro/internal/telemetry"
)

// FaultKind enumerates the failure modes the Faulty wrapper can inject into
// a collective. They model what real transports (§V's TCP/RDMA clusters) do
// under stress: added latency, lost workers, corrupted payloads, reset
// connections, and receivers that stall the whole group.
type FaultKind int

const (
	// FaultDelay sleeps before entering the collective (network latency).
	FaultDelay FaultKind = iota
	// FaultDrop makes the worker fail the operation without entering it,
	// poisoning the group (a crashed or partitioned worker).
	FaultDrop
	// FaultCorrupt flips bits in the worker's outgoing payload (a corrupt
	// wire or buggy NIC); the collective itself succeeds.
	FaultCorrupt
	// FaultReset tears the underlying transport down mid-operation (a TCP
	// connection reset).
	FaultReset
	// FaultStall sleeps after the collective completes (a slow receiver
	// holding up the group's next round).
	FaultStall
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultDelay:
		return "delay"
	case FaultDrop:
		return "drop"
	case FaultCorrupt:
		return "corrupt"
	case FaultReset:
		return "reset"
	case FaultStall:
		return "stall"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// Fault is one rule of a fault plan: inject Kind when the wrapped handle's
// rank, operation, and step counter match. Zero values mean "any": Rank -1 or
// matching, Op empty or matching, and a [FromStep, ToStep] window where
// ToStep 0 leaves the window open-ended. Prob in (0,1) makes the injection
// probabilistic under the plan's seeded RNG; 0 and 1 both mean "always".
type Fault struct {
	Kind     FaultKind
	Rank     int
	Op       Op
	FromStep int64
	ToStep   int64
	Prob     float64
	// Delay is the sleep for FaultDelay/FaultStall (default 1ms).
	Delay time.Duration
}

func (f Fault) matches(rank int, op Op, step int64) bool {
	if f.Rank >= 0 && f.Rank != rank {
		return false
	}
	if f.Op != "" && f.Op != op {
		return false
	}
	if step < f.FromStep {
		return false
	}
	if f.ToStep > 0 && step > f.ToStep {
		return false
	}
	return true
}

// Plan is a deterministic fault schedule: the same plan and seed produce the
// same injections, so chaos tests are reproducible. One plan can be shared by
// all ranks (each rule's Rank field scopes it).
type Plan struct {
	Seed   uint64
	Faults []Fault
}

// AnyRank is the Fault.Rank wildcard.
const AnyRank = -1

// FaultCounts reports how many faults of each kind a Faulty handle injected.
type FaultCounts struct {
	Delays, Drops, Corruptions, Resets, Stalls int64
}

// Total sums all injected faults.
func (c FaultCounts) Total() int64 {
	return c.Delays + c.Drops + c.Corruptions + c.Resets + c.Stalls
}

// Aborter is implemented by collectives that can poison their whole group so
// peers fail instead of waiting forever (InProc via Hub.Abort). Faulty uses
// it to make drop faults deadlock-free on in-process substrates.
type Aborter interface {
	Abort(cause error)
}

// asAborter walks the wrapper chain (see Unwrapper) to the first layer that
// can poison the group, so fault injection reaches the substrate no matter
// how the wrappers are stacked.
func asAborter(c Collective) (Aborter, bool) {
	for c != nil {
		if a, ok := c.(Aborter); ok {
			return a, true
		}
		u, ok := c.(Unwrapper)
		if !ok {
			return nil, false
		}
		c = u.Unwrap()
	}
	return nil, false
}

// asCloser walks the wrapper chain to the first closable transport.
func asCloser(c Collective) (io.Closer, bool) {
	for c != nil {
		if cl, ok := c.(io.Closer); ok {
			return cl, true
		}
		u, ok := c.(Unwrapper)
		if !ok {
			return nil, false
		}
		c = u.Unwrap()
	}
	return nil, false
}

// Faulty wraps a Collective with deterministic fault injection driven by a
// Plan. With an empty plan it is a transparent passthrough: results are
// bitwise identical to the raw collective. Like every Collective handle it
// must be driven from a single goroutine; the injection counters may be read
// concurrently.
type Faulty struct {
	inner  Collective
	plan   Plan
	rng    *fxrand.RNG
	step   atomic.Int64
	counts [5]atomic.Int64
}

var _ ContextCollective = (*Faulty)(nil)

// NewFaulty wraps inner with the given fault plan.
func NewFaulty(inner Collective, plan Plan) *Faulty {
	return &Faulty{inner: inner, plan: plan, rng: fxrand.New(plan.Seed*2654435761 + 1)}
}

// Rank forwards to the wrapped collective.
func (f *Faulty) Rank() int { return f.inner.Rank() }

// Size forwards to the wrapped collective.
func (f *Faulty) Size() int { return f.inner.Size() }

// Unwrap exposes the wrapped collective to capability probes (AsReformer).
// Reforms bypass the fault plan: faults target collective ops, not recovery.
func (f *Faulty) Unwrap() Collective { return f.inner }

// Step reports how many collective operations this handle has performed.
func (f *Faulty) Step() int64 { return f.step.Load() }

// Counts reports the faults injected so far, by kind.
func (f *Faulty) Counts() FaultCounts {
	return FaultCounts{
		Delays:      f.counts[FaultDelay].Load(),
		Drops:       f.counts[FaultDrop].Load(),
		Corruptions: f.counts[FaultCorrupt].Load(),
		Resets:      f.counts[FaultReset].Load(),
		Stalls:      f.counts[FaultStall].Load(),
	}
}

// note records one injection in the handle's counters, mirrors it into the
// telemetry registry, and stamps the incident on the trace timeline. The
// FaultKind order matches the CtrFaultDelays..CtrFaultStalls counter block.
func (f *Faulty) note(kind FaultKind, op Op) {
	f.counts[kind].Add(1)
	telemetry.Default.Add(telemetry.CtrFaultDelays+telemetry.Counter(kind), 1)
	telemetry.Default.Mark("fault:"+kind.String()+":"+string(op), f.inner.Rank())
}

// pick returns the first plan rule matching this operation, rolling the
// seeded RNG for probabilistic rules.
func (f *Faulty) pick(op Op, step int64) *Fault {
	for i := range f.plan.Faults {
		ft := &f.plan.Faults[i]
		if !ft.matches(f.inner.Rank(), op, step) {
			continue
		}
		if ft.Prob > 0 && ft.Prob < 1 && f.rng.Float64() >= ft.Prob {
			continue
		}
		return ft
	}
	return nil
}

func (ft *Fault) sleep() {
	d := ft.Delay
	if d <= 0 {
		d = time.Millisecond
	}
	time.Sleep(d)
}

// fail makes the wrapped group unusable the way the fault kind dictates and
// returns the typed injected error: drop prefers a clean group abort (so
// in-process peers error out instead of deadlocking) with transport close as
// fallback, reset prefers a hard transport close.
func (f *Faulty) fail(ft *Fault, op Op, step int64) error {
	cause := fmt.Errorf("%w: %s at rank %d %s step %d", ErrInjected, ft.Kind, f.inner.Rank(), op, step)
	ab, canAbort := asAborter(f.inner)
	cl, canClose := asCloser(f.inner)
	switch {
	case ft.Kind == FaultReset && canClose:
		cl.Close()
	case ft.Kind == FaultReset && canAbort:
		ab.Abort(cause)
	case canAbort:
		ab.Abort(cause)
	case canClose:
		cl.Close()
	}
	return wrapErr(f.inner.Rank(), op, step, cause)
}

// corrupt returns a bit-flipped copy of b (b itself is never mutated — the
// caller's buffer may be reused by the application).
func (f *Faulty) corrupt(b []byte) []byte {
	if len(b) == 0 {
		return b
	}
	out := append([]byte(nil), b...)
	flips := 1 + len(out)/64
	for i := 0; i < flips; i++ {
		pos := int(f.rng.Uint64() % uint64(len(out)))
		out[pos] ^= byte(1 << (f.rng.Uint64() % 8))
	}
	return out
}

// corruptF32 flips the low mantissa bits of a few elements in place; used for
// allreduce inputs where the payload is a float vector. The slice passed in
// is already a private copy.
func (f *Faulty) corruptF32(x []float32) {
	if len(x) == 0 {
		return
	}
	flips := 1 + len(x)/64
	for i := 0; i < flips; i++ {
		pos := int(f.rng.Uint64() % uint64(len(x)))
		x[pos] *= -3
	}
}

// AllreduceF32 forwards with fault injection; corruption perturbs this
// worker's contribution (the sum still completes, wrongly).
func (f *Faulty) AllreduceF32(x []float32) error {
	return f.AllreduceF32Ctx(context.Background(), x)
}

// AllreduceF32Ctx is AllreduceF32 with the context relayed to the wrapped
// collective; injected delays and stalls still burn real time, so a tight
// deadline can expire across one.
func (f *Faulty) AllreduceF32Ctx(ctx context.Context, x []float32) error {
	step := f.step.Add(1)
	ft := f.pick(OpAllreduce, step)
	if ft == nil {
		return AllreduceF32(ctx, f.inner, x)
	}
	f.note(ft.Kind, OpAllreduce)
	switch ft.Kind {
	case FaultDelay:
		ft.sleep()
		return AllreduceF32(ctx, f.inner, x)
	case FaultStall:
		err := AllreduceF32(ctx, f.inner, x)
		ft.sleep()
		return err
	case FaultCorrupt:
		f.corruptF32(x)
		return AllreduceF32(ctx, f.inner, x)
	default: // drop, reset
		return f.fail(ft, OpAllreduce, step)
	}
}

// AllgatherBytes forwards with fault injection; corruption bit-flips this
// worker's outgoing payload so peers receive garbage bytes.
func (f *Faulty) AllgatherBytes(b []byte) ([][]byte, error) {
	return f.AllgatherBytesCtx(context.Background(), b)
}

// AllgatherBytesCtx is AllgatherBytes with the context relayed.
func (f *Faulty) AllgatherBytesCtx(ctx context.Context, b []byte) ([][]byte, error) {
	step := f.step.Add(1)
	ft := f.pick(OpAllgather, step)
	if ft == nil {
		return AllgatherBytes(ctx, f.inner, b)
	}
	f.note(ft.Kind, OpAllgather)
	switch ft.Kind {
	case FaultDelay:
		ft.sleep()
		return AllgatherBytes(ctx, f.inner, b)
	case FaultStall:
		all, err := AllgatherBytes(ctx, f.inner, b)
		ft.sleep()
		return all, err
	case FaultCorrupt:
		return AllgatherBytes(ctx, f.inner, f.corrupt(b))
	default:
		return nil, f.fail(ft, OpAllgather, step)
	}
}

// BroadcastBytes forwards with fault injection; corruption only matters on
// the root, whose payload is what everyone receives.
func (f *Faulty) BroadcastBytes(b []byte, root int) ([]byte, error) {
	return f.BroadcastBytesCtx(context.Background(), b, root)
}

// BroadcastBytesCtx is BroadcastBytes with the context relayed.
func (f *Faulty) BroadcastBytesCtx(ctx context.Context, b []byte, root int) ([]byte, error) {
	step := f.step.Add(1)
	ft := f.pick(OpBroadcast, step)
	if ft == nil {
		return BroadcastBytes(ctx, f.inner, b, root)
	}
	f.note(ft.Kind, OpBroadcast)
	switch ft.Kind {
	case FaultDelay:
		ft.sleep()
		return BroadcastBytes(ctx, f.inner, b, root)
	case FaultStall:
		out, err := BroadcastBytes(ctx, f.inner, b, root)
		ft.sleep()
		return out, err
	case FaultCorrupt:
		if f.inner.Rank() == root {
			b = f.corrupt(b)
		}
		return BroadcastBytes(ctx, f.inner, b, root)
	default:
		return nil, f.fail(ft, OpBroadcast, step)
	}
}

// Barrier forwards with fault injection (corruption is a no-op for the empty
// token and degrades to a plain passthrough).
func (f *Faulty) Barrier() error {
	return f.BarrierCtx(context.Background())
}

// BarrierCtx is Barrier with the context relayed.
func (f *Faulty) BarrierCtx(ctx context.Context) error {
	step := f.step.Add(1)
	ft := f.pick(OpBarrier, step)
	if ft == nil {
		return Barrier(ctx, f.inner)
	}
	f.note(ft.Kind, OpBarrier)
	switch ft.Kind {
	case FaultDelay:
		ft.sleep()
		return Barrier(ctx, f.inner)
	case FaultStall:
		err := Barrier(ctx, f.inner)
		ft.sleep()
		return err
	case FaultCorrupt:
		return Barrier(ctx, f.inner)
	default:
		return f.fail(ft, OpBarrier, step)
	}
}
