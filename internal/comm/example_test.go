package comm_test

import (
	"fmt"
	"sync"

	"repro/internal/comm"
)

// ExampleHub shows four goroutine workers summing a vector through the
// in-process collective, the substrate the experiments train on.
func ExampleHub() {
	hub := comm.NewHub(4)
	results := make([]float32, 4)
	var wg sync.WaitGroup
	for rank := 0; rank < 4; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			w := hub.Worker(rank)
			x := []float32{float32(rank)}
			if err := w.AllreduceF32(x); err != nil {
				panic(err)
			}
			results[rank] = x[0]
		}(rank)
	}
	wg.Wait()
	fmt.Println(results)
	// Output: [6 6 6 6]
}

// ExampleMeter shows the data-volume accounting the paper's §V metrics rely
// on: the meter counts this worker's wire bytes per collective.
func ExampleMeter() {
	m := comm.NewMeter(comm.Serial{})
	x := make([]float32, 100)
	_ = m.AllreduceF32(x) // 400 bytes of float32
	_, _ = m.AllgatherBytes(make([]byte, 25))
	fmt.Println(m.BytesSent(), "bytes over", m.Ops(), "ops")
	// Output: 425 bytes over 2 ops
}
