package comm

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry"
	"repro/internal/telemetry/xrank"
)

// Hub coordinates an in-process collective group: worker goroutines in one
// address space, synchronizing through a sequence of immutable round objects.
// This is the default substrate for distributed-training experiments — it
// gives real concurrency and real synchronization semantics without network
// overhead, so computation costs can be measured while transfer time is
// modeled separately (see internal/simnet).
//
// A Hub can be aborted: Abort poisons the group so every worker blocked in —
// or later entering — a collective returns a typed *Error wrapping ErrAborted
// instead of waiting forever for peers that will never arrive. This is what
// keeps chaos tests (a rank dropping out mid-allreduce) deadlock-free.
//
// A Hub is also elastic (see Elastic): the group can vote to reform at a
// smaller world size when a member misses the rejoin deadline, and absorb
// registered joiners back later. Workers keep their original rank for life;
// collectives address them by their current index in the sorted member set.
type Hub struct {
	world    int // original group size; handed-out original ranks live below it
	mu       sync.Mutex
	members  []int // sorted original ranks currently in the group
	lost     []int // original ranks evicted by the most recent elastic shrink
	cur      *round
	aborted  chan struct{} // closed on Abort
	abortErr error
	gen      uint64      // group generation, bumped by each reform
	ref      *reformSync // in-progress reform rendezvous, nil between reforms
	pending  map[int]*joinWait
	reformTO time.Duration
}

// reformSync is one reform rendezvous: the final arrival — or, in an elastic
// shrink, the first deadline expiry — heals the hub, publishes the new
// membership, and wakes the rest.
type reformSync struct {
	arrived map[int]bool
	grow    []int      // non-nil marks a grow rendezvous: the agreed absorb set
	mem     Membership // valid once done is closed; Rank is -1 (per-caller)
	done    chan struct{}
}

// joinWait parks one registered joiner until a grow absorbs it.
type joinWait struct {
	mem  Membership // valid once done is closed; Rank is -1
	done chan struct{}
}

type round struct {
	slots [][]byte
	count int
	done  chan struct{}
}

// NewHub creates a hub for n workers.
func NewHub(n int) *Hub {
	if n <= 0 {
		panic("comm: hub size must be positive")
	}
	members := make([]int, n)
	for i := range members {
		members[i] = i
	}
	return &Hub{
		world:    n,
		members:  members,
		cur:      newRound(n),
		aborted:  make(chan struct{}),
		pending:  make(map[int]*joinWait),
		reformTO: DefaultReformTimeout,
	}
}

// DefaultReformTimeout bounds how long a reform rendezvous waits for the
// group: long enough to cover a supervisor respawning a dead rank.
const DefaultReformTimeout = 60 * time.Second

// SetReformTimeout overrides how long reform waits for all workers to arrive
// (tests shrink it; rejoin batteries stretch it past the respawn delay).
func (h *Hub) SetReformTimeout(d time.Duration) {
	h.mu.Lock()
	h.reformTO = d
	h.mu.Unlock()
}

// Generation reports the hub's current group generation.
func (h *Hub) Generation() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.gen
}

// size reports the current world size.
func (h *Hub) size() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.members)
}

// currentRank maps an original rank to its index in the member set (-1 when
// evicted or still pending).
func (h *Hub) currentRank(orig int) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return indexOf(h.members, orig)
}

// membership snapshots the current configuration addressed to orig.
func (h *Hub) membership(orig int) Membership {
	h.mu.Lock()
	defer h.mu.Unlock()
	return Membership{
		Gen:     h.gen,
		Members: append([]int(nil), h.members...),
		Rank:    indexOf(h.members, orig),
		Lost:    append([]int(nil), h.lost...),
	}
}

// rendezvous is the reform meeting point shared by all three recovery paths.
// Legacy reform (shrinkOK=false, grow=nil) waits for the full membership and
// fails with ErrPeerDead on timeout; an elastic shrink (shrinkOK=true) lets
// the first rank whose deadline expires commit the arrived set as the new,
// smaller membership, evicting the rest; a grow (grow != nil) is a full
// rendezvous whose commit also absorbs the agreed joiners. Every commit
// clears the abort poison, installs a fresh round sized to the new
// membership, and bumps the generation. No rank may be inside a collective
// when its rendezvous runs (reform occupies a slot in the lockstep op
// sequence, after all ranks failed out of the same op), so replacing the
// round is race-free.
func (h *Hub) rendezvous(orig int, wait time.Duration, shrinkOK bool, grow []int) (Membership, error) {
	h.mu.Lock()
	if indexOf(h.members, orig) < 0 {
		h.mu.Unlock()
		return Membership{}, fmt.Errorf("rank %d: %w", orig, ErrEvicted)
	}
	if h.ref == nil {
		h.ref = &reformSync{arrived: make(map[int]bool), grow: grow, done: make(chan struct{})}
	}
	rs := h.ref
	if (rs.grow == nil) != (grow == nil) || (grow != nil && !equalInts(rs.grow, grow)) {
		h.mu.Unlock()
		return Membership{}, fmt.Errorf("comm: reform rendezvous mixed shapes: grow %v vs %v", grow, rs.grow)
	}
	rs.arrived[orig] = true
	if len(rs.arrived) == len(h.members) {
		mem := h.commitLocked(rs, h.members, nil)
		h.mu.Unlock()
		telemetry.Default.Add(telemetry.CtrGroupReforms, 1)
		if grow != nil && mem.Size() > len(rs.arrived) {
			telemetry.Default.Add(telemetry.CtrElasticGrows, 1)
		}
		return mem, nil
	}
	h.mu.Unlock()
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-rs.done:
		return rs.mem, nil
	case <-t.C:
		h.mu.Lock()
		if h.ref != rs {
			// Another rank committed between our timer firing and the lock;
			// the rendezvous result is valid and includes us.
			h.mu.Unlock()
			<-rs.done
			return rs.mem, nil
		}
		arrived := len(rs.arrived)
		if !shrinkOK {
			// The slot stays consumed: the group must be rebuilt (legacy
			// reform) or retried by the caller (grow).
			n := len(h.members)
			h.mu.Unlock()
			return Membership{}, fmt.Errorf("reform rendezvous: %d of %d workers after %v: %w",
				arrived, n, wait, ErrPeerDead)
		}
		// Elastic shrink: the deadline has passed and the vote is the set of
		// ranks that showed up. Commit them as the new membership; the
		// missing ranks are evicted.
		survivors := make([]int, 0, arrived)
		for r := range rs.arrived {
			survivors = append(survivors, r)
		}
		sort.Ints(survivors)
		var lost []int
		for _, m := range h.members {
			if !rs.arrived[m] {
				lost = append(lost, m)
			}
		}
		mem := h.commitLocked(rs, survivors, lost)
		h.mu.Unlock()
		telemetry.Default.Add(telemetry.CtrGroupReforms, 1)
		telemetry.Default.Add(telemetry.CtrElasticShrinks, 1)
		return mem, nil
	}
}

// commitLocked installs a new group configuration and wakes the rendezvous.
// Caller holds h.mu. members must be sorted; a grow rendezvous absorbs its
// registered joiners here so the membership change is one atomic commit.
func (h *Hub) commitLocked(rs *reformSync, members, lost []int) Membership {
	members = append([]int(nil), members...)
	var woken []*joinWait
	if rs.grow != nil {
		for _, r := range rs.grow {
			jw, ok := h.pending[r]
			if !ok || indexOf(members, r) >= 0 {
				continue
			}
			members = sortedUnion(members, []int{r})
			woken = append(woken, jw)
			delete(h.pending, r)
			if r >= h.world {
				h.world = r + 1
			}
		}
	}
	h.members = members
	h.lost = append([]int(nil), lost...)
	h.aborted = make(chan struct{})
	h.abortErr = nil
	h.cur = newRound(len(members))
	h.gen++
	rs.mem = Membership{Gen: h.gen, Members: members, Rank: -1, Lost: h.lost}
	h.ref = nil
	close(rs.done)
	for _, jw := range woken {
		jw.mem = Membership{Gen: h.gen, Members: members, Rank: -1}
		close(jw.done)
	}
	return rs.mem
}

// reform is the legacy all-workers recovery rendezvous: once every member of
// the group has arrived, the abort poison is cleared, a fresh round is
// installed, and the group generation advances. A rank that waits longer
// than the reform timeout gives up with a typed error; its rendezvous slot
// stays consumed, so the group must be rebuilt by the supervisor at that
// point.
func (h *Hub) reform(orig int) (uint64, error) {
	h.mu.Lock()
	to := h.reformTO
	h.mu.Unlock()
	mem, err := h.rendezvous(orig, to, false, nil)
	if err != nil {
		return 0, err
	}
	return mem.Gen, nil
}

func newRound(n int) *round {
	return &round{slots: make([][]byte, n), done: make(chan struct{})}
}

// Worker returns the collective handle for the given original rank.
func (h *Hub) Worker(rank int) *InProc {
	if rank < 0 || rank >= h.world {
		panic(fmt.Sprintf("comm: rank %d out of [0,%d)", rank, h.world))
	}
	return &InProc{hub: h, rank: rank}
}

// Join registers a fresh worker with the given original rank as a pending
// joiner and returns its handle. The handle's JoinGroup blocks until the
// current members absorb it via ReformGrow; collectives fail with ErrEvicted
// until then.
func (h *Hub) Join(rank int) (*InProc, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if rank < 0 {
		return nil, fmt.Errorf("comm: join rank %d negative", rank)
	}
	if indexOf(h.members, rank) >= 0 {
		return nil, fmt.Errorf("comm: join rank %d is already a member", rank)
	}
	if _, ok := h.pending[rank]; ok {
		return nil, fmt.Errorf("comm: join rank %d is already pending", rank)
	}
	jw := &joinWait{done: make(chan struct{})}
	h.pending[rank] = jw
	return &InProc{hub: h, rank: rank, join: jw}, nil
}

// pendingJoins reports registered joiners, sorted.
func (h *Hub) pendingJoins() []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]int, 0, len(h.pending))
	for r := range h.pending {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// Abort poisons the hub: every worker currently blocked in a round and every
// future collective call fails with an error wrapping ErrAborted (and cause,
// when non-nil). Abort is idempotent; the first cause wins.
func (h *Hub) Abort(cause error) {
	h.mu.Lock()
	select {
	case <-h.aborted:
	default:
		h.abortErr = cause
		close(h.aborted)
	}
	h.mu.Unlock()
}

// abortedErr reports the abort cause wrapped in ErrAborted, or nil when the
// hub is healthy. Callers must hold no locks.
func (h *Hub) abortedErr() error {
	select {
	case <-h.aborted:
	default:
		return nil
	}
	h.mu.Lock()
	cause := h.abortErr
	h.mu.Unlock()
	if cause != nil {
		return fmt.Errorf("%w: %w", ErrAborted, cause)
	}
	return ErrAborted
}

// exchange deposits this worker's payload and returns everyone's payloads in
// current-rank order. Each round object is written only before its done
// channel closes and read only after, so rounds are race-free; the last
// depositor installs a fresh round before waking the others, letting fast
// workers proceed to the next operation immediately. An aborted hub fails
// the exchange instead of blocking on peers that will never deposit, and a
// worker the group has moved on without fails with ErrEvicted.
//
// Though no packet leaves the process, the deposited payload is accounted as
// wire traffic in the telemetry registry: the hub substitutes for a network,
// so its "wire" volume is what a real transport would have carried.
func (h *Hub) exchange(orig int, payload []byte) ([][]byte, error) {
	if err := h.abortedErr(); err != nil {
		return nil, err
	}
	telemetry.Default.Add(telemetry.CtrCollectiveOps, 1)
	telemetry.Default.Add(telemetry.CtrWireBytesSent, int64(len(payload)))
	h.mu.Lock()
	idx := indexOf(h.members, orig)
	if idx < 0 {
		h.mu.Unlock()
		return nil, fmt.Errorf("rank %d: %w", orig, ErrEvicted)
	}
	r := h.cur
	r.slots[idx] = payload
	r.count++
	if r.count == len(r.slots) {
		h.cur = newRound(len(r.slots))
		close(r.done)
	}
	aborted := h.aborted
	h.mu.Unlock()
	select {
	case <-r.done:
		var recv int64
		for i, s := range r.slots {
			if i != idx {
				recv += int64(len(s))
			}
		}
		telemetry.Default.Add(telemetry.CtrWireBytesRecv, recv)
		return r.slots, nil
	case <-aborted:
		// The round may still complete concurrently, but once the group is
		// poisoned no result can be trusted; fail deterministically.
		return nil, h.abortedErr()
	}
}

// InProc is one worker's handle onto a Hub. rank is the worker's original,
// lifetime identity; Rank() reports its current index in the member set.
type InProc struct {
	hub  *Hub
	rank int
	join *joinWait // non-nil until a pending joiner is absorbed
	step int64
}

var _ Collective = (*InProc)(nil)
var _ Elastic = (*InProc)(nil)
var _ Joiner = (*InProc)(nil)

// Rank returns this worker's current rank: its index in the sorted member
// set (equal to the original rank while the group is intact, -1 while
// evicted or pending).
func (w *InProc) Rank() int { return w.hub.currentRank(w.rank) }

// OriginalRank returns the worker's lifetime identity, stable across elastic
// membership changes.
func (w *InProc) OriginalRank() int { return w.rank }

// Size returns the current group size.
func (w *InProc) Size() int { return w.hub.size() }

// Abort poisons the whole group this handle belongs to (see Hub.Abort).
func (w *InProc) Abort(cause error) { w.hub.Abort(cause) }

// Reform joins the hub's recovery rendezvous (see Hub.reform): it blocks
// until every member of the group — including a freshly respawned one —
// calls Reform, then returns the new group generation with the abort poison
// cleared.
func (w *InProc) Reform() (uint64, error) {
	gen, err := w.hub.reform(w.rank)
	if err != nil {
		return 0, wrapErr(w.rank, OpReform, w.step, err)
	}
	xrank.Default.SetGeneration(gen)
	xrank.Default.RecordFault(w.rank, xrank.OpReform, w.step, xrank.FaultReform)
	return gen, nil
}

// ReformElastic joins the elastic recovery rendezvous: the full membership
// reforms intact when everyone arrives within wait; otherwise the arrived
// ranks commit a smaller world size and the missing ranks are evicted.
func (w *InProc) ReformElastic(wait time.Duration) (Membership, error) {
	mem, err := w.hub.rendezvous(w.rank, wait, true, nil)
	if err != nil {
		return Membership{}, wrapErr(w.rank, OpReform, w.step, err)
	}
	mem.Rank = mem.CurrentRank(w.rank)
	xrank.Default.SetGeneration(mem.Gen)
	xrank.Default.SetWorldSize(mem.Size())
	telemetry.Default.SetGauge("world_size", int64(mem.Size()))
	xrank.Default.RecordFault(w.rank, xrank.OpReform, w.step, xrank.FaultReform)
	return mem, nil
}

// ReformGrow rebuilds the group absorbing the agreed joiners (see Elastic).
func (w *InProc) ReformGrow(members []int) (Membership, error) {
	w.hub.mu.Lock()
	to := w.hub.reformTO
	w.hub.mu.Unlock()
	mem, err := w.hub.rendezvous(w.rank, to, false, append([]int(nil), members...))
	if err != nil {
		return Membership{}, wrapErr(w.rank, OpReform, w.step, err)
	}
	mem.Rank = mem.CurrentRank(w.rank)
	xrank.Default.SetGeneration(mem.Gen)
	xrank.Default.SetWorldSize(mem.Size())
	telemetry.Default.SetGauge("world_size", int64(mem.Size()))
	xrank.Default.RecordFault(w.rank, xrank.OpReform, w.step, xrank.FaultReform)
	return mem, nil
}

// PendingJoins reports workers registered via Hub.Join and not yet absorbed.
func (w *InProc) PendingJoins() []int { return w.hub.pendingJoins() }

// Membership reports the group's current configuration from this worker's
// perspective.
func (w *InProc) Membership() Membership { return w.hub.membership(w.rank) }

// JoinGroup blocks until the members absorb this pending joiner via
// ReformGrow (see Joiner). On a handle that is already a member it returns
// the current membership immediately.
func (w *InProc) JoinGroup(wait time.Duration) (Membership, error) {
	jw := w.join
	if jw == nil {
		mem := w.hub.membership(w.rank)
		if mem.Rank < 0 {
			return Membership{}, wrapErr(w.rank, OpReform, w.step, fmt.Errorf("rank %d: %w", w.rank, ErrEvicted))
		}
		return mem, nil
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-jw.done:
		w.join = nil
		mem := jw.mem
		mem.Rank = mem.CurrentRank(w.rank)
		xrank.Default.SetGeneration(mem.Gen)
		xrank.Default.SetWorldSize(mem.Size())
		return mem, nil
	case <-t.C:
		return Membership{}, wrapErr(w.rank, OpReform, w.step,
			fmt.Errorf("join rendezvous: not absorbed after %v", wait))
	}
}

// AllreduceF32 sums x across workers in place. Every worker reduces the
// gathered slices in rank order, so results are bitwise identical everywhere.
func (w *InProc) AllreduceF32(x []float32) error {
	w.step++
	buf := f32ToBytes(x)
	xt0 := xrank.Default.Start()
	all, err := w.hub.exchange(w.rank, buf)
	xrank.Default.RecordOp(w.rank, xrank.OpAllreduce, w.step, int64(len(buf)), xt0)
	if err != nil {
		return wrapErr(w.rank, OpAllreduce, w.step, err)
	}
	for i := range x {
		x[i] = 0
	}
	for _, b := range all {
		other := bytesToF32(b)
		if len(other) != len(x) {
			return wrapErr(w.rank, OpAllreduce, w.step,
				fmt.Errorf("allreduce length mismatch: %d vs %d", len(other), len(x)))
		}
		for i, v := range other {
			x[i] += v
		}
	}
	return nil
}

// AllgatherBytes distributes every worker's payload to all workers.
func (w *InProc) AllgatherBytes(b []byte) ([][]byte, error) {
	w.step++
	xt0 := xrank.Default.Start()
	all, err := w.hub.exchange(w.rank, b)
	xrank.Default.RecordOp(w.rank, xrank.OpAllgather, w.step, int64(len(b)), xt0)
	if err != nil {
		return nil, wrapErr(w.rank, OpAllgather, w.step, err)
	}
	out := make([][]byte, len(all))
	copy(out, all)
	return out, nil
}

// BroadcastBytes distributes root's payload. root is a current rank.
func (w *InProc) BroadcastBytes(b []byte, root int) ([]byte, error) {
	w.step++
	cur := w.hub.currentRank(w.rank)
	if cur < 0 {
		return nil, wrapErr(w.rank, OpBroadcast, w.step, fmt.Errorf("rank %d: %w", w.rank, ErrEvicted))
	}
	if root < 0 || root >= w.hub.size() {
		return nil, wrapErr(w.rank, OpBroadcast, w.step, fmt.Errorf("broadcast root %d out of range", root))
	}
	var payload []byte
	if cur == root {
		payload = b
	}
	xt0 := xrank.Default.Start()
	all, err := w.hub.exchange(w.rank, payload)
	xrank.Default.RecordOp(w.rank, xrank.OpBroadcast, w.step, int64(len(payload)), xt0)
	if err != nil {
		return nil, wrapErr(w.rank, OpBroadcast, w.step, err)
	}
	return all[root], nil
}

// Barrier blocks until all workers arrive.
func (w *InProc) Barrier() error {
	w.step++
	xt0 := xrank.Default.Start()
	_, err := w.hub.exchange(w.rank, nil)
	xrank.Default.RecordOp(w.rank, xrank.OpBarrier, w.step, 0, xt0)
	if err != nil {
		return wrapErr(w.rank, OpBarrier, w.step, err)
	}
	return nil
}

// equalInts reports element-wise equality.
func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// f32ToBytes reinterprets a float32 slice as little-endian bytes by copy.
func f32ToBytes(x []float32) []byte {
	out := make([]byte, len(x)*4)
	for i, v := range x {
		putF32(out[i*4:], v)
	}
	return out
}

func bytesToF32(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = getF32(b[i*4:])
	}
	return out
}
