package comm

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/telemetry"
	"repro/internal/telemetry/xrank"
)

// Hub coordinates an in-process collective group: n worker goroutines in one
// address space, synchronizing through a sequence of immutable round objects.
// This is the default substrate for distributed-training experiments — it
// gives real concurrency and real synchronization semantics without network
// overhead, so computation costs can be measured while transfer time is
// modeled separately (see internal/simnet).
//
// A Hub can be aborted: Abort poisons the group so every worker blocked in —
// or later entering — a collective returns a typed *Error wrapping ErrAborted
// instead of waiting forever for peers that will never arrive. This is what
// keeps chaos tests (a rank dropping out mid-allreduce) deadlock-free.
type Hub struct {
	n        int
	mu       sync.Mutex
	cur      *round
	aborted  chan struct{} // closed on Abort
	abortErr error
	gen      uint64      // group generation, bumped by each reform
	ref      *reformSync // in-progress reform rendezvous, nil between reforms
	reformTO time.Duration
}

// reformSync is one reform rendezvous: the last of n arrivals heals the hub,
// publishes the new generation, and wakes the rest.
type reformSync struct {
	count int
	gen   uint64 // valid once done is closed
	done  chan struct{}
}

type round struct {
	slots [][]byte
	count int
	done  chan struct{}
}

// NewHub creates a hub for n workers.
func NewHub(n int) *Hub {
	if n <= 0 {
		panic("comm: hub size must be positive")
	}
	return &Hub{n: n, cur: newRound(n), aborted: make(chan struct{}), reformTO: DefaultReformTimeout}
}

// DefaultReformTimeout bounds how long a reform rendezvous waits for the
// group: long enough to cover a supervisor respawning a dead rank.
const DefaultReformTimeout = 60 * time.Second

// SetReformTimeout overrides how long reform waits for all workers to arrive
// (tests shrink it; rejoin batteries stretch it past the respawn delay).
func (h *Hub) SetReformTimeout(d time.Duration) {
	h.mu.Lock()
	h.reformTO = d
	h.mu.Unlock()
}

// Generation reports the hub's current group generation.
func (h *Hub) Generation() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.gen
}

// reform is the all-workers recovery rendezvous: once every rank of the group
// has arrived, the abort poison is cleared, a fresh round is installed, and
// the group generation advances. No rank may be inside a collective when its
// reform runs (reform occupies a slot in the lockstep op sequence, after all
// ranks failed out of the same op), so replacing the round is race-free. A
// rank that waits longer than the reform timeout gives up with a typed error;
// its rendezvous slot stays consumed, so the group must be rebuilt by the
// supervisor at that point.
func (h *Hub) reform() (uint64, error) {
	h.mu.Lock()
	if h.ref == nil {
		h.ref = &reformSync{done: make(chan struct{})}
	}
	rs := h.ref
	rs.count++
	if rs.count == h.n {
		h.aborted = make(chan struct{})
		h.abortErr = nil
		h.cur = newRound(h.n)
		h.gen++
		rs.gen = h.gen
		h.ref = nil
		close(rs.done)
		h.mu.Unlock()
		telemetry.Default.Add(telemetry.CtrGroupReforms, 1)
		return rs.gen, nil
	}
	to := h.reformTO
	h.mu.Unlock()
	t := time.NewTimer(to)
	defer t.Stop()
	select {
	case <-rs.done:
		return rs.gen, nil
	case <-t.C:
		h.mu.Lock()
		arrived := rs.count
		h.mu.Unlock()
		return 0, fmt.Errorf("reform rendezvous: %d of %d workers after %v: %w",
			arrived, h.n, to, ErrPeerDead)
	}
}

func newRound(n int) *round {
	return &round{slots: make([][]byte, n), done: make(chan struct{})}
}

// Worker returns the collective handle for the given rank.
func (h *Hub) Worker(rank int) *InProc {
	if rank < 0 || rank >= h.n {
		panic(fmt.Sprintf("comm: rank %d out of [0,%d)", rank, h.n))
	}
	return &InProc{hub: h, rank: rank}
}

// Abort poisons the hub: every worker currently blocked in a round and every
// future collective call fails with an error wrapping ErrAborted (and cause,
// when non-nil). Abort is idempotent; the first cause wins.
func (h *Hub) Abort(cause error) {
	h.mu.Lock()
	select {
	case <-h.aborted:
	default:
		h.abortErr = cause
		close(h.aborted)
	}
	h.mu.Unlock()
}

// abortedErr reports the abort cause wrapped in ErrAborted, or nil when the
// hub is healthy. Callers must hold no locks.
func (h *Hub) abortedErr() error {
	select {
	case <-h.aborted:
	default:
		return nil
	}
	h.mu.Lock()
	cause := h.abortErr
	h.mu.Unlock()
	if cause != nil {
		return fmt.Errorf("%w: %w", ErrAborted, cause)
	}
	return ErrAborted
}

// exchange deposits this worker's payload and returns everyone's payloads in
// rank order. Each round object is written only before its done channel
// closes and read only after, so rounds are race-free; the last depositor
// installs a fresh round before waking the others, letting fast workers
// proceed to the next operation immediately. An aborted hub fails the
// exchange instead of blocking on peers that will never deposit.
//
// Though no packet leaves the process, the deposited payload is accounted as
// wire traffic in the telemetry registry: the hub substitutes for a network,
// so its "wire" volume is what a real transport would have carried.
func (h *Hub) exchange(rank int, payload []byte) ([][]byte, error) {
	if err := h.abortedErr(); err != nil {
		return nil, err
	}
	telemetry.Default.Add(telemetry.CtrCollectiveOps, 1)
	telemetry.Default.Add(telemetry.CtrWireBytesSent, int64(len(payload)))
	h.mu.Lock()
	r := h.cur
	r.slots[rank] = payload
	r.count++
	if r.count == h.n {
		h.cur = newRound(h.n)
		close(r.done)
	}
	h.mu.Unlock()
	select {
	case <-r.done:
		var recv int64
		for i, s := range r.slots {
			if i != rank {
				recv += int64(len(s))
			}
		}
		telemetry.Default.Add(telemetry.CtrWireBytesRecv, recv)
		return r.slots, nil
	case <-h.aborted:
		// The round may still complete concurrently, but once the group is
		// poisoned no result can be trusted; fail deterministically.
		return nil, h.abortedErr()
	}
}

// InProc is one worker's handle onto a Hub.
type InProc struct {
	hub  *Hub
	rank int
	step int64
}

var _ Collective = (*InProc)(nil)

// Rank returns this worker's rank.
func (w *InProc) Rank() int { return w.rank }

// Size returns the group size.
func (w *InProc) Size() int { return w.hub.n }

// Abort poisons the whole group this handle belongs to (see Hub.Abort).
func (w *InProc) Abort(cause error) { w.hub.Abort(cause) }

// Reform joins the hub's recovery rendezvous (see Hub.reform): it blocks
// until every rank of the group — including a freshly respawned one — calls
// Reform, then returns the new group generation with the abort poison
// cleared.
func (w *InProc) Reform() (uint64, error) {
	gen, err := w.hub.reform()
	if err != nil {
		return 0, wrapErr(w.rank, OpReform, w.step, err)
	}
	xrank.Default.SetGeneration(gen)
	xrank.Default.RecordFault(w.rank, xrank.OpReform, w.step, xrank.FaultReform)
	return gen, nil
}

// AllreduceF32 sums x across workers in place. Every worker reduces the
// gathered slices in rank order, so results are bitwise identical everywhere.
func (w *InProc) AllreduceF32(x []float32) error {
	w.step++
	buf := f32ToBytes(x)
	xt0 := xrank.Default.Start()
	all, err := w.hub.exchange(w.rank, buf)
	xrank.Default.RecordOp(w.rank, xrank.OpAllreduce, w.step, int64(len(buf)), xt0)
	if err != nil {
		return wrapErr(w.rank, OpAllreduce, w.step, err)
	}
	for i := range x {
		x[i] = 0
	}
	for _, b := range all {
		other := bytesToF32(b)
		if len(other) != len(x) {
			return wrapErr(w.rank, OpAllreduce, w.step,
				fmt.Errorf("allreduce length mismatch: %d vs %d", len(other), len(x)))
		}
		for i, v := range other {
			x[i] += v
		}
	}
	return nil
}

// AllgatherBytes distributes every worker's payload to all workers.
func (w *InProc) AllgatherBytes(b []byte) ([][]byte, error) {
	w.step++
	xt0 := xrank.Default.Start()
	all, err := w.hub.exchange(w.rank, b)
	xrank.Default.RecordOp(w.rank, xrank.OpAllgather, w.step, int64(len(b)), xt0)
	if err != nil {
		return nil, wrapErr(w.rank, OpAllgather, w.step, err)
	}
	out := make([][]byte, len(all))
	copy(out, all)
	return out, nil
}

// BroadcastBytes distributes root's payload.
func (w *InProc) BroadcastBytes(b []byte, root int) ([]byte, error) {
	w.step++
	if root < 0 || root >= w.hub.n {
		return nil, wrapErr(w.rank, OpBroadcast, w.step, fmt.Errorf("broadcast root %d out of range", root))
	}
	var payload []byte
	if w.rank == root {
		payload = b
	}
	xt0 := xrank.Default.Start()
	all, err := w.hub.exchange(w.rank, payload)
	xrank.Default.RecordOp(w.rank, xrank.OpBroadcast, w.step, int64(len(payload)), xt0)
	if err != nil {
		return nil, wrapErr(w.rank, OpBroadcast, w.step, err)
	}
	return all[root], nil
}

// Barrier blocks until all workers arrive.
func (w *InProc) Barrier() error {
	w.step++
	xt0 := xrank.Default.Start()
	_, err := w.hub.exchange(w.rank, nil)
	xrank.Default.RecordOp(w.rank, xrank.OpBarrier, w.step, 0, xt0)
	if err != nil {
		return wrapErr(w.rank, OpBarrier, w.step, err)
	}
	return nil
}

// f32ToBytes reinterprets a float32 slice as little-endian bytes by copy.
func f32ToBytes(x []float32) []byte {
	out := make([]byte, len(x)*4)
	for i, v := range x {
		putF32(out[i*4:], v)
	}
	return out
}

func bytesToF32(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = getF32(b[i*4:])
	}
	return out
}
