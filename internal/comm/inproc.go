package comm

import (
	"fmt"
	"sync"
)

// Hub coordinates an in-process collective group: n worker goroutines in one
// address space, synchronizing through a sequence of immutable round objects.
// This is the default substrate for distributed-training experiments — it
// gives real concurrency and real synchronization semantics without network
// overhead, so computation costs can be measured while transfer time is
// modeled separately (see internal/simnet).
type Hub struct {
	n   int
	mu  sync.Mutex
	cur *round
}

type round struct {
	slots [][]byte
	count int
	done  chan struct{}
}

// NewHub creates a hub for n workers.
func NewHub(n int) *Hub {
	if n <= 0 {
		panic("comm: hub size must be positive")
	}
	return &Hub{n: n, cur: newRound(n)}
}

func newRound(n int) *round {
	return &round{slots: make([][]byte, n), done: make(chan struct{})}
}

// Worker returns the collective handle for the given rank.
func (h *Hub) Worker(rank int) *InProc {
	if rank < 0 || rank >= h.n {
		panic(fmt.Sprintf("comm: rank %d out of [0,%d)", rank, h.n))
	}
	return &InProc{hub: h, rank: rank}
}

// exchange deposits this worker's payload and returns everyone's payloads in
// rank order. Each round object is written only before its done channel
// closes and read only after, so rounds are race-free; the last depositor
// installs a fresh round before waking the others, letting fast workers
// proceed to the next operation immediately.
func (h *Hub) exchange(rank int, payload []byte) [][]byte {
	h.mu.Lock()
	r := h.cur
	r.slots[rank] = payload
	r.count++
	if r.count == h.n {
		h.cur = newRound(h.n)
		close(r.done)
	}
	h.mu.Unlock()
	<-r.done
	return r.slots
}

// InProc is one worker's handle onto a Hub.
type InProc struct {
	hub  *Hub
	rank int
}

var _ Collective = (*InProc)(nil)

// Rank returns this worker's rank.
func (w *InProc) Rank() int { return w.rank }

// Size returns the group size.
func (w *InProc) Size() int { return w.hub.n }

// AllreduceF32 sums x across workers in place. Every worker reduces the
// gathered slices in rank order, so results are bitwise identical everywhere.
func (w *InProc) AllreduceF32(x []float32) error {
	buf := f32ToBytes(x)
	all := w.hub.exchange(w.rank, buf)
	for i := range x {
		x[i] = 0
	}
	for _, b := range all {
		other := bytesToF32(b)
		if len(other) != len(x) {
			return fmt.Errorf("comm: allreduce length mismatch: %d vs %d", len(other), len(x))
		}
		for i, v := range other {
			x[i] += v
		}
	}
	return nil
}

// AllgatherBytes distributes every worker's payload to all workers.
func (w *InProc) AllgatherBytes(b []byte) ([][]byte, error) {
	all := w.hub.exchange(w.rank, b)
	out := make([][]byte, len(all))
	copy(out, all)
	return out, nil
}

// BroadcastBytes distributes root's payload.
func (w *InProc) BroadcastBytes(b []byte, root int) ([]byte, error) {
	if root < 0 || root >= w.hub.n {
		return nil, fmt.Errorf("comm: broadcast root %d out of range", root)
	}
	var payload []byte
	if w.rank == root {
		payload = b
	}
	all := w.hub.exchange(w.rank, payload)
	return all[root], nil
}

// Barrier blocks until all workers arrive.
func (w *InProc) Barrier() error {
	w.hub.exchange(w.rank, nil)
	return nil
}

// f32ToBytes reinterprets a float32 slice as little-endian bytes by copy.
func f32ToBytes(x []float32) []byte {
	out := make([]byte, len(x)*4)
	for i, v := range x {
		putF32(out[i*4:], v)
	}
	return out
}

func bytesToF32(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = getF32(b[i*4:])
	}
	return out
}
