package metrics

import (
	"math"
	"testing"
)

func TestAccuracy(t *testing.T) {
	if got := Accuracy([]int{1, 2, 3}, []int{1, 0, 3}); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("Accuracy = %v", got)
	}
	if Accuracy(nil, nil) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}

func TestAccuracyMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Accuracy([]int{1}, []int{1, 2})
}

func TestHitAtK(t *testing.T) {
	scores := []float32{0.9, 0.5, 0.8, 0.1}
	if !HitAtK(scores, 0, 1) {
		t.Fatal("top score must hit at k=1")
	}
	if HitAtK(scores, 3, 3) {
		t.Fatal("lowest of 4 must miss at k=3")
	}
	if !HitAtK(scores, 3, 4) {
		t.Fatal("lowest of 4 must hit at k=4")
	}
	// Pessimistic ties: equal score counts as ranked above.
	tied := []float32{0.5, 0.5}
	if HitAtK(tied, 1, 1) {
		t.Fatal("tie must resolve pessimistically")
	}
}

func TestPerplexity(t *testing.T) {
	if Perplexity(0) != 1 {
		t.Fatal("PPL of zero CE must be 1")
	}
	if math.Abs(Perplexity(math.Log(50))-50) > 1e-9 {
		t.Fatal("PPL of log(50) must be 50")
	}
}

func TestIoU(t *testing.T) {
	pred := []float32{0.9, 0.9, 0.05, 0.05}
	target := []float32{1, 0, 1, 0}
	// threshold 0.5: pred = {1,1,0,0}; inter = 1, union = 3.
	if got := IoU(pred, target, 0.5); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("IoU = %v", got)
	}
	if IoU([]float32{0, 0}, []float32{0, 0}, 0.5) != 1 {
		t.Fatal("empty masks should give IoU 1")
	}
	if IoU([]float32{1, 1}, []float32{1, 1}, 0.5) != 1 {
		t.Fatal("perfect match should give IoU 1")
	}
}

func TestRelative(t *testing.T) {
	if Relative(3, 2) != 1.5 {
		t.Fatal("Relative wrong")
	}
	if Relative(3, 0) != 0 {
		t.Fatal("zero baseline should give 0")
	}
}
