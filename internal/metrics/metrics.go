// Package metrics implements the quality metrics of the paper's Table II:
// top-1 accuracy, best hit rate (HR@10), test perplexity and intersection-
// over-union, plus the relative normalization used throughout §V.
package metrics

import "math"

// Accuracy is the fraction of predictions equal to labels.
func Accuracy(pred, labels []int) float64 {
	if len(pred) != len(labels) {
		panic("metrics: Accuracy length mismatch")
	}
	if len(pred) == 0 {
		return 0
	}
	hits := 0
	for i, p := range pred {
		if p == labels[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(pred))
}

// HitAtK reports whether the target's score ranks within the top k of
// scores (ties resolved pessimistically: equal scores at other indices push
// the target down).
func HitAtK(scores []float32, target, k int) bool {
	if target < 0 || target >= len(scores) {
		panic("metrics: HitAtK target out of range")
	}
	better := 0
	for i, s := range scores {
		if i == target {
			continue
		}
		if s >= scores[target] {
			better++
		}
	}
	return better < k
}

// Perplexity converts a mean cross-entropy (nats per token) to perplexity.
func Perplexity(meanCrossEntropy float64) float64 {
	return math.Exp(meanCrossEntropy)
}

// IoU computes intersection-over-union of a sigmoid-probability map against
// a binary mask at the given probability threshold (the paper's segmentation
// benchmark reports IoU at threshold 0.125). Returns 1 when both prediction
// and target are empty.
func IoU(prob, target []float32, threshold float32) float64 {
	if len(prob) != len(target) {
		panic("metrics: IoU length mismatch")
	}
	inter, union := 0, 0
	for i, p := range prob {
		pred := p > threshold
		tru := target[i] > 0.5
		if pred && tru {
			inter++
		}
		if pred || tru {
			union++
		}
	}
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Relative normalizes a value against a baseline (the paper reports relative
// throughput and data volume); a zero baseline yields 0.
func Relative(value, baseline float64) float64 {
	if baseline == 0 {
		return 0
	}
	return value / baseline
}
